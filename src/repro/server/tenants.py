"""Tenancy: named graphs, admission quotas, snapshot-isolated reads.

Each :class:`Tenant` owns one :class:`~repro.engine.session.GraphSession`
and one :class:`TenantQueryService` (the admission batcher). Two layers
guard a request on its way to execution:

1. **the quota gate** — a per-tenant semaphore sized
   ``max_concurrent``, with at most ``max_pending`` requests allowed to
   wait for a slot and a per-request deadline. Breaches surface as
   :class:`~repro.errors.QuotaExceededError` (HTTP 429) or
   :class:`~repro.errors.QueryTimeout` (HTTP 408) *before* the request
   touches the batcher, so one tenant's burst cannot occupy another
   tenant's service.
2. **the admission batcher** — the tenant's service is sized so the
   quota gate is the only place requests ever queue
   (``max_pending == max_concurrent``); whatever the gate admits is
   accepted immediately.

**Snapshot isolation.** :class:`TenantQueryService` extends the
admission key with the store version current at submission, so every
batch is homogeneous in the version its requests observed. When a batch
executes *after* append-only writes moved the store on, the service
routes it to a pinned read view rebuilt by
:meth:`~repro.storage.relational.RelationalStore.snapshot_at` instead
of the live session — reads never see a torn half-write and never see
rows from a version newer than their admission. Snapshot views exist
for the relational backends (``ra``/``vec``, the only engines that read
the store); other backends fall back to the live session and the
``snapshot_fallbacks`` counter says so.
"""

from __future__ import annotations

import asyncio
from collections import OrderedDict
from dataclasses import asdict, dataclass, field, replace
from typing import Iterator, Mapping

from repro.engine.options import ExecOptions
from repro.engine.resilience import BreakerConfig, RetryPolicy
from repro.engine.session import GraphSession
from repro.errors import (
    QueryTimeout,
    QuotaExceededError,
    ReproError,
    RequestError,
    UnknownTenantError,
)
from repro.serve.batch import BatchOutcome, execute_batch
from repro.serve.service import _THREAD_SAFE_BACKENDS, QueryService
from repro.server.models import (
    BatchRequest,
    ExplainRequest,
    QueryRequest,
    WriteRequest,
    rows_payload,
)

#: Backends that evaluate against ``session.store`` and therefore have a
#: meaningful pinned view; the rest derive state from the graph object
#: and fall back to the live session.
_SNAPSHOT_BACKENDS = frozenset({"ra", "vec"})


@dataclass(frozen=True)
class TenantQuotas:
    """Admission limits for one tenant.

    ``max_concurrent`` requests may execute at once; ``max_pending``
    more may wait for a slot; each request gets at most
    ``timeout_seconds`` of wall clock (slot wait included) — a smaller
    per-request ``timeout_seconds`` is honoured, a larger one clamped.
    ``max_rows``/``max_bytes`` cap what one request may materialise
    (enforced by the engine's :class:`~repro.graph.evaluator
    .ResourceBudget`); per-request caps below the quota are honoured,
    caps above it are clamped down.
    """

    max_concurrent: int = 8
    max_pending: int = 64
    timeout_seconds: float = 30.0
    max_rows: int | None = None
    max_bytes: int | None = None

    def __post_init__(self):
        if self.max_concurrent < 1:
            raise ValueError("max_concurrent must be >= 1")
        if self.max_pending < 0:
            raise ValueError("max_pending must be >= 0")
        if self.timeout_seconds <= 0:
            raise ValueError("timeout_seconds must be positive")
        for name in ("max_rows", "max_bytes"):
            value = getattr(self, name)
            if value is not None and value < 1:
                raise ValueError(f"{name} must be >= 1 when set")

    def clamp(self, requested: float | None) -> float:
        return (
            self.timeout_seconds
            if requested is None
            else min(requested, self.timeout_seconds)
        )

    def clamp_options(
        self, options: ExecOptions | None
    ) -> ExecOptions | None:
        """Per-request exec options with resource caps held to the quota.

        A request may *lower* its row/byte caps below the tenant limits
        but never raise them: unset or too-large request caps are pinned
        to the quota values.
        """
        if options is None or (
            self.max_rows is None and self.max_bytes is None
        ):
            return options
        updates: dict = {}
        if self.max_rows is not None and (
            options.max_rows is None or options.max_rows > self.max_rows
        ):
            updates["max_rows"] = self.max_rows
        if self.max_bytes is not None and (
            options.max_bytes is None or options.max_bytes > self.max_bytes
        ):
            updates["max_bytes"] = self.max_bytes
        return replace(options, **updates) if updates else options


@dataclass
class TenantMetrics:
    """Request-level counters for one tenant (all lifetime totals)."""

    requests_total: int = 0
    completed: int = 0
    rejected_quota: int = 0
    timeouts: int = 0
    errors: int = 0
    writes: int = 0
    rows_appended: int = 0


class TenantQueryService(QueryService):
    """A :class:`QueryService` whose batches are store-version-homogeneous.

    The admission key is ``(schema_fingerprint, store.version)``; at
    execution time the batch is routed to a session pinned at exactly
    the version its requests were admitted under. Pinned sessions are
    cached per ``(pinned, live)`` version pair — the live half matters
    because a snapshot shares unchanged tables with the live store *by
    reference*, so the moment another write lands, a previously built
    view could watch shared tables mutate; keying on the live version
    retires it instead. All routing happens under ``_session_lock``,
    the same lock every execution and write holds.
    """

    def __init__(
        self,
        session: GraphSession,
        backend: str = "vec",
        *,
        snapshot_cache_size: int = 4,
        **kwargs,
    ):
        super().__init__(session, backend, **kwargs)
        self._snapshot_cache_size = snapshot_cache_size
        self._snapshots: "OrderedDict[tuple[int, int], GraphSession]" = (
            OrderedDict()
        )
        self.snapshot_reads = 0
        self.snapshot_fallbacks = 0
        self.snapshot_sessions_built = 0

    def _admission_key(self) -> object:
        return (self.session.schema_fingerprint, self.session.store.version)

    async def _execute(
        self, queries: list, key: object = None
    ) -> BatchOutcome:
        def run() -> BatchOutcome:
            with self._session_lock:
                session = self._session_for(key)
                return execute_batch(
                    session,
                    queries,
                    self.backend,
                    timeout_seconds=self.timeout_seconds,
                    rewrite=self.rewrite,
                    backend_options=self.backend_options,
                    planner=self.planner,
                )

        if self.backend in _THREAD_SAFE_BACKENDS:
            return await asyncio.to_thread(run)
        return run()

    def _session_for(self, key: object) -> GraphSession:
        """The session a batch admitted under ``key`` must run on.

        Caller holds ``_session_lock`` — nothing can move the store
        version between the checks below and the batch's execution.
        """
        if not (isinstance(key, tuple) and len(key) == 2):
            return self.session
        pinned = key[1]
        live = self.session.store.version
        if pinned == live:
            return self.session
        if self.backend not in _SNAPSHOT_BACKENDS:
            self.snapshot_fallbacks += 1
            return self.session
        cache_key = (pinned, live)
        cached = self._snapshots.get(cache_key)
        if cached is not None:
            self._snapshots.move_to_end(cache_key)
            self.snapshot_reads += 1
            return cached
        snapshot = self.session.snapshot_session(pinned)
        if snapshot is None or snapshot is self.session:
            # A non-append write barrier (or a truncated delta log)
            # means the pinned view is unreconstructable; the live
            # session is the best available answer.
            self.snapshot_fallbacks += 1
            return self.session
        self.snapshot_sessions_built += 1
        self._snapshots[cache_key] = snapshot
        while len(self._snapshots) > self._snapshot_cache_size:
            _, evicted = self._snapshots.popitem(last=False)
            evicted.close()
        self.snapshot_reads += 1
        return snapshot

    async def close(self) -> None:
        await super().close()
        for snapshot in self._snapshots.values():
            snapshot.close()
        self._snapshots.clear()


class Tenant:
    """One named graph: a session, its service, quotas and counters."""

    def __init__(
        self,
        name: str,
        session: GraphSession,
        quotas: TenantQuotas | None = None,
        *,
        backend: str = "vec",
        backend_options: Mapping | None = None,
        planner: str | None = None,
        dataset: str | None = None,
        fallback: bool = True,
        breaker_config: BreakerConfig | None = None,
        retry_policy: RetryPolicy | None = None,
    ):
        self.name = name
        self.session = session
        self.quotas = quotas or TenantQuotas()
        self.metrics = TenantMetrics()
        self.dataset = dataset
        self.backend = backend
        # Served sessions degrade gracefully by default: retryable
        # failures walk the backend chain instead of surfacing, and the
        # quota's resource caps become the session-wide defaults.
        session.exec_options = session.exec_options.merged(
            ExecOptions(
                max_rows=self.quotas.max_rows,
                max_bytes=self.quotas.max_bytes,
                fallback=True if fallback else None,
            )
        )
        if breaker_config is not None:
            session.breaker_config = breaker_config
            session._breakers.clear()
        if retry_policy is not None:
            session.retry_policy = retry_policy
        self.service = TenantQueryService(
            session,
            backend,
            # The quota gate is the only queue: the service accepts
            # whatever the gate admits, immediately.
            max_pending=self.quotas.max_concurrent,
            timeout_seconds=self.quotas.timeout_seconds,
            backend_options=backend_options,
            planner=planner,
        )
        self._slots = asyncio.Semaphore(self.quotas.max_concurrent)
        self._active = 0
        self._waiting = 0

    # -- admission (the quota gate) ----------------------------------------
    async def _admit(self, timeout_seconds: float) -> None:
        if self._slots.locked():
            if self._waiting >= self.quotas.max_pending:
                raise QuotaExceededError(
                    self.name, "max_pending", self.quotas.max_pending
                )
            self._waiting += 1
            try:
                await asyncio.wait_for(
                    self._slots.acquire(), timeout_seconds
                )
            except (asyncio.TimeoutError, TimeoutError):
                raise QueryTimeout(timeout_seconds) from None
            finally:
                self._waiting -= 1
        else:
            await self._slots.acquire()
        self._active += 1

    def _release(self) -> None:
        self._active -= 1
        self._slots.release()

    async def _guard(self, op):
        """Run one op coroutine, translating outcomes into counters."""
        self.metrics.requests_total += 1
        try:
            result = await op
            self.metrics.completed += 1
            return result
        except QuotaExceededError:
            self.metrics.rejected_quota += 1
            raise
        except QueryTimeout:
            self.metrics.timeouts += 1
            raise
        except ReproError:
            self.metrics.errors += 1
            raise

    def _uses_service_shape(self, request) -> bool:
        """Whether a request matches the service's fixed configuration.

        Only such requests go through the admission batcher (and its
        snapshot routing); anything bespoke executes directly under the
        same session lock.
        """
        return (
            request.backend == self.service.backend
            and request.rewrite == self.service.rewrite
            and (request.planner is None
                 or request.planner == self.service.planner)
            and request.options is None
        )

    # -- operations --------------------------------------------------------
    async def query(self, request: QueryRequest) -> dict:
        return await self._guard(self._query(request))

    async def _query(self, request: QueryRequest) -> dict:
        timeout = self.quotas.clamp(request.timeout_seconds)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        await self._admit(timeout)
        try:
            admitted_version = self.session.store.version
            if self._uses_service_shape(request):
                rows = await self._await_with_deadline(
                    self.service.submit(request.query), deadline, timeout
                )
            else:
                rows = await self._execute_direct(request, deadline)
            return {
                "tenant": self.name,
                "backend": request.backend,
                "store_version": admitted_version,
                "row_count": len(rows),
                "rows": rows_payload(rows),
            }
        finally:
            self._release()

    async def batch(self, request: BatchRequest) -> dict:
        return await self._guard(self._batch(request))

    async def _batch(self, request: BatchRequest) -> dict:
        timeout = self.quotas.clamp(request.timeout_seconds)
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        await self._admit(timeout)
        try:
            admitted_version = self.session.store.version
            if self._uses_service_shape(request):
                results = await self._await_with_deadline(
                    self.service.map(list(request.queries)),
                    deadline,
                    timeout,
                )
            else:
                budget = max(deadline - loop.time(), 0.001)

                def run() -> list[frozenset]:
                    with self.service._session_lock:
                        return self.session.execute_batch(
                            list(request.queries),
                            request.backend,
                            timeout_seconds=budget,
                            rewrite=request.rewrite,
                            planner=request.planner,
                            exec_options=self.quotas.clamp_options(
                                request.options
                            ),
                        )

                results = await self._offload(request.backend, run)
            return {
                "tenant": self.name,
                "backend": request.backend,
                "store_version": admitted_version,
                "queries": len(results),
                "row_counts": [len(rows) for rows in results],
                "results": [rows_payload(rows) for rows in results],
            }
        finally:
            self._release()

    async def write(self, request: WriteRequest) -> dict:
        return await self._guard(self._write(request))

    async def _write(self, request: WriteRequest) -> dict:
        timeout = self.quotas.timeout_seconds
        await self._admit(timeout)
        try:
            store = self.session.store
            if request.table in store.aliases:
                raise RequestError(
                    f"{request.table!r} is an alias view; append to one of "
                    "its member tables instead",
                    field="table",
                )
            if not store.has_table(request.table):
                raise RequestError(
                    f"unknown table {request.table!r}", field="table"
                )
            arity = len(store.table(request.table).columns)
            for index, row in enumerate(request.rows):
                if len(row) != arity:
                    raise RequestError(
                        f"rows[{index}] has {len(row)} values; table "
                        f"{request.table!r} has {arity} columns",
                        field="rows",
                    )

            def run() -> tuple[int, int]:
                # The same lock every read batch executes under: a write
                # can never interleave with a half-finished read.
                with self.service._session_lock:
                    added = store.add_rows(request.table, request.rows)
                    return added, store.version

            added, version = await asyncio.to_thread(run)
            self.metrics.writes += 1
            self.metrics.rows_appended += added
            return {
                "tenant": self.name,
                "table": request.table,
                "rows_received": len(request.rows),
                "rows_added": added,
                "store_version": version,
            }
        finally:
            self._release()

    async def explain(self, request: ExplainRequest) -> dict:
        return await self._guard(self._explain(request))

    async def _explain(self, request: ExplainRequest) -> dict:
        await self._admit(self.quotas.timeout_seconds)
        try:
            def run():
                with self.service._session_lock:
                    return self.session.explain(
                        request.query,
                        request.backend,
                        rewrite=request.rewrite,
                        planner=request.planner,
                        exec_options=request.options,
                    )

            report = await self._offload(request.backend, run)
            # "plan" stays the rendered text (the pre-report wire shape);
            # "report" is the same ExplainReport, structured.
            return {
                "tenant": self.name,
                "backend": report.backend,
                "plan": report.render(),
                "report": report.to_dict(),
            }
        finally:
            self._release()

    # -- execution helpers -------------------------------------------------
    async def _await_with_deadline(self, awaitable, deadline, timeout):
        loop = asyncio.get_running_loop()
        remaining = max(deadline - loop.time(), 0.001)
        try:
            return await asyncio.wait_for(awaitable, remaining)
        except (asyncio.TimeoutError, TimeoutError):
            raise QueryTimeout(timeout) from None

    async def _execute_direct(
        self, request: QueryRequest, deadline: float
    ) -> frozenset:
        """Run a bespoke-configuration request outside the batcher
        (still serialised with it via the session lock)."""
        loop = asyncio.get_running_loop()
        budget = max(deadline - loop.time(), 0.001)

        def run() -> frozenset:
            with self.service._session_lock:
                return self.session.execute(
                    request.query,
                    request.backend,
                    timeout_seconds=budget,
                    rewrite=request.rewrite,
                    planner=request.planner,
                    exec_options=self.quotas.clamp_options(request.options),
                )

        return await self._offload(request.backend, run)

    async def _offload(self, backend: str, fn):
        """Run ``fn`` off-loop when the backend tolerates worker threads
        (sqlite's connection is pinned to its creating thread)."""
        if backend in _THREAD_SAFE_BACKENDS:
            return await asyncio.to_thread(fn)
        return fn()

    # -- introspection -----------------------------------------------------
    def metrics_payload(self) -> dict:
        session = self.session
        service = self.service
        store = session.store
        return {
            "dataset": self.dataset,
            "backend": self.backend,
            "quotas": asdict(self.quotas),
            "requests": asdict(self.metrics),
            "admission": {
                "active": self._active,
                "waiting": self._waiting,
            },
            "service": {
                **asdict(service.stats),
                "mean_batch_size": round(service.stats.mean_batch_size, 3),
            },
            "snapshots": {
                "reads": service.snapshot_reads,
                "fallbacks": service.snapshot_fallbacks,
                "sessions_built": service.snapshot_sessions_built,
                "cached": len(service._snapshots),
            },
            "caches": {
                name: asdict(stats)
                for name, stats in session.cache_stats.items()
            },
            "planner": session.planner_stats,
            "store": {**store.stats(), "version": store.version},
        }


class TenantRegistry:
    """The set of tenants one server instance manages."""

    def __init__(self):
        self._tenants: "dict[str, Tenant]" = {}

    def add(self, tenant: Tenant) -> Tenant:
        if tenant.name in self._tenants:
            raise ValueError(f"tenant {tenant.name!r} already registered")
        self._tenants[tenant.name] = tenant
        return tenant

    def get(self, name: str) -> Tenant:
        try:
            return self._tenants[name]
        except KeyError:
            raise UnknownTenantError(name) from None

    def names(self) -> tuple[str, ...]:
        return tuple(self._tenants)

    def __iter__(self) -> Iterator[Tenant]:
        return iter(self._tenants.values())

    def __len__(self) -> int:
        return len(self._tenants)

    async def start_all(self) -> None:
        for tenant in self:
            await tenant.service.start()

    async def close_all(self) -> None:
        for tenant in self:
            await tenant.service.close()
            tenant.session.close()

    def metrics_payload(self) -> dict:
        return {
            "tenants": {
                tenant.name: tenant.metrics_payload() for tenant in self
            }
        }
