"""``ExecOptions`` — every execution knob in one frozen dataclass.

Execution knobs used to be scattered: ``backend=`` and ``planner=``
parameters, a per-backend ``backend_options`` mapping (``kernel``,
``parallelism``, ``morsel_size``, ``fixpoint_growth``), and session-level
result-cache/incremental toggles. :class:`ExecOptions` collapses them
into one immutable object accepted uniformly by
``GraphSession.__init__`` / ``prepare`` / ``execute`` / ``execute_batch``,
the CLI and the HTTP request models.

Resolution order, most specific wins:

1. per-call legacy kwargs (``backend=``, ``planner=``,
   ``backend_options={...}`` — kept as deprecated aliases),
2. the per-call ``exec_options=``,
3. the session's constructor-time ``exec_options=``.

Each backend consumes only the knobs it understands
(:data:`BACKEND_OPTION_KEYS`): one options object can therefore describe
a mixed-backend batch — ``vec`` reads ``kernel``/``parallelism``/
``morsel_size``/``fixpoint_growth`` plus the out-of-core trio
``spill_path``/``spill_threshold_bytes``/``shard_workers``, ``ra``
reads ``fixpoint_growth``,
the rest take nothing. A legacy ``backend_options`` mapping is still
handed to the backend verbatim (on top of the derived knobs), so
third-party backends with their own option vocabulary — and option-typo
validation — keep working.

Deprecation warnings for the legacy kwargs are gated behind
``REPRO_EXEC_OPTIONS_WARN=1`` so existing callers stay quiet by default;
a CI leg runs the whole suite with the flag on.
"""

from __future__ import annotations

import os
import warnings
from dataclasses import dataclass, fields, replace
from typing import Mapping

from repro.engine.cache import freeze_options

#: Environment flag turning legacy-kwarg DeprecationWarnings on.
EXEC_OPTIONS_WARN_ENV = "REPRO_EXEC_OPTIONS_WARN"

#: Which ExecOptions knobs each built-in backend consumes. Backends not
#: listed (sqlite/gdb/reference, third-party registrations) take no
#: derived knobs — only a legacy ``backend_options`` mapping reaches
#: them, verbatim.
BACKEND_OPTION_KEYS: dict[str, tuple[str, ...]] = {
    "vec": (
        "kernel",
        "parallelism",
        "morsel_size",
        "fixpoint_growth",
        "spill_path",
        "spill_threshold_bytes",
        "shard_workers",
    ),
    "ra": ("fixpoint_growth",),
}

#: The ExecOptions fields that travel inside a backend-options mapping.
_KNOB_FIELDS = (
    "kernel",
    "parallelism",
    "morsel_size",
    "fixpoint_growth",
    "spill_path",
    "spill_threshold_bytes",
    "shard_workers",
)


def exec_options_warnings_enabled() -> bool:
    return os.environ.get(EXEC_OPTIONS_WARN_ENV, "").strip().lower() in (
        "1", "true", "yes", "on",
    )


def warn_legacy_exec_kwargs(context: str) -> None:
    """Emit the (env-gated) deprecation warning for legacy kwargs."""
    if exec_options_warnings_enabled():
        warnings.warn(
            f"{context}: the planner=/backend_options= keyword arguments "
            "are deprecated aliases; pass exec_options=ExecOptions(...) "
            "instead",
            DeprecationWarning,
            stacklevel=3,
        )


@dataclass(frozen=True)
class ExecOptions:
    """Immutable bundle of every execution knob.

    All fields default to ``None`` ("unset"): resolution overlays more
    specific objects onto less specific ones field by field, and each
    consumer applies its own default for fields still unset.
    """

    backend: str | None = None           # execution substrate ("auto" allowed)
    planner: str | None = None           # "greedy" | "cost"
    kernel: str | None = None            # vec kernel pin ("numpy"/"python")
    parallelism: int | None = None       # vec morsel-parallel worker count
    morsel_size: int | None = None       # vec rows per morsel task
    fixpoint_growth: float | None = None # estimator closure-growth override
    spill_path: str | None = None        # out-of-core spill directory root
    spill_threshold_bytes: int | None = None  # spill tables above this size
    shard_workers: int | None = None     # vec multi-process morsel workers
    result_cache_size: int | None = None # session result-cache capacity
    incremental: bool | None = None      # session maintenance toggle
    max_rows: int | None = None          # ResourceBudget cumulative row cap
    max_bytes: int | None = None         # ResourceBudget intermediate-bytes cap
    fallback: bool | None = None         # retry down the backend chain

    def __post_init__(self) -> None:
        for name in ("backend", "planner", "kernel", "spill_path"):
            value = getattr(self, name)
            if value is not None and not isinstance(value, str):
                raise ValueError(
                    f"exec option {name!r} must be a string, got {value!r}"
                )
        for name in (
            "parallelism",
            "morsel_size",
            "max_rows",
            "max_bytes",
            "spill_threshold_bytes",
            "shard_workers",
        ):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int) or value < 1:
                raise ValueError(
                    f"exec option {name!r} must be a positive integer, "
                    f"got {value!r}"
                )
        growth = self.fixpoint_growth
        if growth is not None:
            if isinstance(growth, bool) or not isinstance(growth, (int, float)):
                raise ValueError(
                    f"exec option 'fixpoint_growth' must be a number, "
                    f"got {growth!r}"
                )
        size = self.result_cache_size
        if size is not None:
            if isinstance(size, bool) or not isinstance(size, int) or size < 0:
                raise ValueError(
                    "exec option 'result_cache_size' must be a "
                    f"non-negative integer, got {size!r}"
                )
        if self.incremental is not None and not isinstance(
            self.incremental, bool
        ):
            raise ValueError(
                "exec option 'incremental' must be a boolean, "
                f"got {self.incremental!r}"
            )
        if self.fallback is not None and not isinstance(self.fallback, bool):
            raise ValueError(
                "exec option 'fallback' must be a boolean, "
                f"got {self.fallback!r}"
            )

    # -- resolution --------------------------------------------------------
    def merged(self, other: "ExecOptions | None") -> "ExecOptions":
        """This object with ``other``'s *set* fields overlaid on top."""
        if other is None:
            return self
        updates = {
            field.name: getattr(other, field.name)
            for field in fields(other)
            if getattr(other, field.name) is not None
        }
        return replace(self, **updates) if updates else self

    def with_legacy(
        self,
        *,
        backend: str | None = None,
        planner: str | None = None,
        backend_options: Mapping | None = None,
    ) -> "ExecOptions":
        """Overlay the deprecated per-call aliases onto this object."""
        updates: dict = {}
        if backend is not None:
            updates["backend"] = backend
        if planner is not None:
            updates["planner"] = planner
        for key in _KNOB_FIELDS:
            if backend_options and backend_options.get(key) is not None:
                updates[key] = backend_options[key]
        return replace(self, **updates) if updates else self

    # -- projection to one backend ----------------------------------------
    def backend_options_for(
        self, backend: str | None, extra: Mapping | None = None
    ) -> dict | None:
        """The backend-options mapping ``backend``'s prepare should see.

        Derived from the knobs ``backend`` consumes
        (:data:`BACKEND_OPTION_KEYS`); a legacy ``extra`` mapping is laid
        on top verbatim — unknown keys deliberately reach the backend so
        its own option validation still fires. ``None`` when nothing
        applies (the pre-options prepare signature keeps working).
        """
        options: dict = {}
        for key in BACKEND_OPTION_KEYS.get(backend or "", ()):
            value = getattr(self, key)
            if value is not None:
                options[key] = value
        if extra:
            options.update(extra)
        return options or None

    def freeze(
        self, backend: str | None, extra: Mapping | None = None
    ) -> tuple | None:
        """The canonical cache-key part for this object on one backend.

        The single place plan-/result-cache keying derives from
        execution options: :func:`~repro.engine.cache.freeze_options`
        over exactly the mapping the backend would receive.
        """
        return freeze_options(self.backend_options_for(backend, extra))

    # -- (de)serialization -------------------------------------------------
    def to_dict(self) -> dict:
        """The set fields only, JSON-serializable."""
        return {
            field.name: getattr(self, field.name)
            for field in fields(self)
            if getattr(self, field.name) is not None
        }

    @classmethod
    def from_mapping(cls, payload: Mapping) -> "ExecOptions":
        """Build from an untrusted mapping (the HTTP request models).

        Raises ``ValueError`` on unknown keys or ill-typed values — the
        server wraps that into its structured request-error taxonomy.
        """
        if not isinstance(payload, Mapping):
            raise ValueError(
                f"exec options must be an object, got {type(payload).__name__}"
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(payload) - known)
        if unknown:
            raise ValueError(
                f"unknown exec option(s) {', '.join(map(repr, unknown))}; "
                f"accepted options: {', '.join(sorted(known))}"
            )
        return cls(**{key: payload[key] for key in payload})


#: The all-unset object resolution starts from.
DEFAULT_EXEC_OPTIONS = ExecOptions()
