"""``ExplainReport`` — the structured result of ``session.explain()``.

``explain`` used to hand back one opaque string, assembled inline from
the backend's plan text plus whichever footers happened to apply. The
CLI printed it, the HTTP tier shipped it, and nothing downstream could
consume the pieces (the ranked-candidate table, the cache counters, the
Q-error summary) without re-parsing text.

:class:`ExplainReport` is those pieces as data. ``render()`` produces
exactly the text ``explain`` always produced — byte-identical, section
by section — and ``to_dict()`` produces the JSON form the HTTP
``/explain`` endpoint returns next to it. The report also *behaves*
like its rendered text for the common assertions (``str(report)``,
``"join" in report``), so existing string-minded callers keep working
unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.engine.cache import CacheStats
from repro.exec.executor import ExecutionStats
from repro.planner import PlanChoice

#: The fixed text of the unsatisfiable-plan section.
UNSATISFIABLE_TEXT = (
    "-- empty result: the schema proved this query unsatisfiable --"
)


@dataclass(frozen=True)
class ExplainReport:
    """Everything ``explain`` knows about one prepared query.

    Optional sections are ``None`` exactly when the rendered text would
    omit them: ``result_cache`` only when the plan participates in the
    session's result cache, ``maintenance`` only when maintenance
    counters are nonzero, ``q_error`` only when the session's
    calibration log holds completed executions for this backend.
    """

    backend: str                          # backend name the plan targets
    query: str                            # the original query, as text
    plan_text: str | None                 # None: provably unsatisfiable
    choice: PlanChoice | None = None      # cost planner's ranked table
    result_cache: CacheStats | None = None
    maintenance: ExecutionStats | None = None
    q_error: dict | None = None           # {"count","p50","p90","max","calibrated"}
    #: Degradation state (``session.resilience_stats()``); None when the
    #: session has never retried, degraded, or tripped a breaker, so the
    #: rendered text stays byte-identical for untouched sessions.
    resilience: dict | None = None

    @property
    def unsatisfiable(self) -> bool:
        return self.plan_text is None

    def render(self) -> str:
        """The classic ``explain`` text, assembled from the sections."""
        if self.plan_text is None:
            text = UNSATISFIABLE_TEXT
            if self.choice is not None:
                text += f"\n\n{self.choice.render()}"
            return text
        text = self.plan_text
        if self.choice is not None:
            text += f"\n\n{self.choice.render()}"
        if self.result_cache is not None:
            stats = self.result_cache
            text += (
                f"\n\n-- result cache: {stats.hits} hit(s), "
                f"{stats.misses} miss(es), {stats.size} cached result set(s) --"
            )
            if self.maintenance is not None:
                maintenance = self.maintenance
                text += (
                    f"\n-- incremental maintenance: "
                    f"{maintenance.results_maintained} maintained, "
                    f"{maintenance.results_invalidated} invalidated, "
                    f"{maintenance.delta_rows_applied} delta row(s) applied --"
                )
        if self.q_error is not None:
            summary = self.q_error
            calibrated = ", calibrated" if summary.get("calibrated") else ""
            text += (
                f"\n\n-- q-error ({self.backend}{calibrated}): "
                f"{summary['count']} execution(s), "
                f"p50 {summary['p50']:.2f}, p90 {summary['p90']:.2f}, "
                f"max {summary['max']:.2f} --"
            )
        if self.resilience is not None:
            info = self.resilience
            open_breakers = sorted(
                name
                for name, breaker in info.get("breakers", {}).items()
                if breaker.get("state") != "closed"
            )
            text += (
                f"\n\n-- resilience: {info.get('retries', 0)} retrie(s), "
                f"{info.get('degraded', 0)} degraded execution(s), "
                f"{info.get('breaker_opens', 0)} breaker open(s)"
            )
            if open_breakers:
                text += f"; open: {', '.join(open_breakers)}"
            text += " --"
        return text

    def to_dict(self) -> dict:
        """JSON-serializable form (the HTTP ``/explain`` payload)."""
        payload: dict = {
            "backend": self.backend,
            "query": self.query,
            "unsatisfiable": self.unsatisfiable,
            "plan": self.plan_text,
        }
        if self.choice is not None:
            payload["candidates"] = self.choice.to_dict()
        if self.result_cache is not None:
            stats = self.result_cache
            payload["result_cache"] = {
                "hits": stats.hits,
                "misses": stats.misses,
                "size": stats.size,
            }
        if self.maintenance is not None:
            maintenance = self.maintenance
            payload["maintenance"] = {
                "results_maintained": maintenance.results_maintained,
                "results_invalidated": maintenance.results_invalidated,
                "delta_rows_applied": maintenance.delta_rows_applied,
            }
        if self.q_error is not None:
            payload["q_error"] = dict(self.q_error)
        if self.resilience is not None:
            payload["resilience"] = dict(self.resilience)
        return payload

    # -- string-compatible surface ----------------------------------------
    def __str__(self) -> str:
        return self.render()

    def __contains__(self, item: str) -> bool:
        return item in self.render()
