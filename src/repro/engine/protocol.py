"""The uniform execution-backend protocol and its registry.

A *backend* adapts one execution substrate (µ-RA engine, the vectorized
columnar engine, SQLite, the graph-pattern engine, the reference
evaluator) to the three-step contract
the session drives: ``prepare`` compiles a (possibly schema-rewritten)
UCQT into a backend-specific plan artefact, ``execute`` runs a prepared
plan, ``explain`` renders it human-readably via the substrate's existing
printer. Backends are stateless — all derived state (relational store,
SQLite database, pattern engine) lives on the session, so one registry
entry serves every session.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Protocol, runtime_checkable

from repro.query.model import UCQT

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.session import GraphSession


@runtime_checkable
class Backend(Protocol):
    """Uniform adapter interface over one execution substrate."""

    #: Registry key and the ``backend=`` argument of ``session.execute``.
    name: str

    def prepare(
        self,
        session: "GraphSession",
        query: UCQT,
        options: Mapping | None = None,
    ) -> object:
        """Compile ``query`` into this backend's plan artefact.

        ``options`` carries backend-specific knobs (e.g. the ``vec``
        backend's ``{"kernel": ...}``); backends without knobs ignore it.
        The session canonicalises the mapping into its plan-cache key, so
        implementations may bake option values into the plan artefact.
        """

    def execute(
        self,
        session: "GraphSession",
        plan: object,
        timeout_seconds: float | None = None,
    ) -> frozenset[tuple]:
        """Run a prepared plan, returning head-ordered result tuples."""

    def explain(self, session: "GraphSession", plan: object) -> str:
        """Render the prepared plan with the substrate's printer.

        Backends may additionally implement optional hooks:

        * ``result_token(plan) -> Hashable`` — the plan's *structural*
          identity (e.g. the optimised term plus head, or the generated
          SQL text). Backends that do so opt their executions into the
          session's result-set cache, keyed on ``(backend name, token,
          schema fingerprint, store version, frozen backend options)``;
          backends without the hook are never result-cached.
        * ``prepare_from_term(session, term, query, options) -> plan`` —
          compile a µ-RA term the cost-based planner already optimised,
          skipping the backend's own translate+optimise. Backends
          without it receive the winning candidate's *query* through
          ``prepare`` instead (their candidate space is then the rewrite
          choice, costed via the RA proxy).
        * ``execute_with_stats(session, plan, timeout, stats) -> rows``
          — like ``execute`` but filling an
          :class:`~repro.exec.executor.ExecutionStats` with actual
          per-operator cardinalities; cost-planned sessions use it to
          close the adaptive feedback loop.
        """


_REGISTRY: dict[str, Backend] = {}


def register_backend(backend: Backend) -> Backend:
    """Add a backend instance to the global registry (last write wins)."""
    _REGISTRY[backend.name] = backend
    return backend


def get_backend(name: str) -> Backend:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ValueError(
            f"unknown backend {name!r}; registered: {available_backends()}"
        ) from None


def available_backends() -> tuple[str, ...]:
    """Registered backend names, in registration order."""
    return tuple(_REGISTRY)
