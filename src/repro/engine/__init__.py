"""Unified engine layer: ``GraphSession``, the backend protocol and caches.

Quickstart::

    from repro.engine import GraphSession

    session = GraphSession(graph, schema)
    rows = session.execute("x1, x2 <- (x1, livesIn/isLocatedIn+, x2)")
    print(session.explain("x1, x2 <- (x1, livesIn/isLocatedIn+, x2)",
                          backend="sqlite"))

The same query string runs unchanged on every registered backend
(``ra``, ``vec``, ``sqlite``, ``gdb``, ``reference``); rewriting and
planning are cached per (query, schema fingerprint, options).
"""

from repro.engine.cache import (
    CachedResult,
    CacheStats,
    LruCache,
    freeze_options,
    result_cache_key,
)
from repro.engine.protocol import (
    Backend,
    available_backends,
    get_backend,
    register_backend,
)
from repro.engine.resilience import BreakerConfig, CircuitBreaker, RetryPolicy
from repro.engine.session import (
    GraphSession,
    PreparedQuery,
    schema_fingerprint,
)

__all__ = [
    "GraphSession",
    "PreparedQuery",
    "Backend",
    "register_backend",
    "get_backend",
    "available_backends",
    "schema_fingerprint",
    "BreakerConfig",
    "CircuitBreaker",
    "RetryPolicy",
    "CacheStats",
    "CachedResult",
    "LruCache",
    "freeze_options",
    "result_cache_key",
]
