"""Bounded LRU caches with hit/miss counters.

All three session cache layers — the rewrite cache, the per-backend plan
cache and the (opt-in) result-set cache — are instances of
:class:`LruCache`. Keys always embed the session's schema fingerprint,
so a schema change invalidates entries *semantically* — stale entries
simply never hit again and age out of the LRU order. Result-set entries
carry the store version they were computed at *inside the value*
(:class:`CachedResult`) rather than in the key: a stale entry is found
again after a write, so the session can **maintain** it from the
store's append delta (re-seeding the semi-naive executor over the
materialised fixpoint states) instead of recomputing — falling back to
eviction when no delta exists.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, TypeVar

V = TypeVar("V")

_MISSING = object()


def freeze_options(options: Mapping | None) -> tuple | None:
    """Canonicalise an options mapping into a hashable cache-key part.

    Mappings become ``(key, value)`` tuples *sorted by key* (recursively,
    so nested dicts are canonical too) and lists/sets become tuples —
    two logically identical option dicts built in different insertion
    orders therefore freeze to the same key instead of fragmenting the
    LRU with duplicate entries. ``None`` and ``{}`` both freeze to
    ``None`` (no options).
    """
    if not options:
        return None
    return tuple(
        (key, _freeze_value(options[key])) for key in sorted(options)
    )


def result_cache_key(
    backend_name: str,
    plan_token: Hashable,
    fingerprint: str,
    options: Mapping | None,
) -> tuple:
    """The result-set cache key for one executable plan.

    ``plan_token`` is the backend's *structural* plan identity (e.g. the
    optimised µ-RA term plus head for ``ra``/``vec``, the generated SQL
    text for ``sqlite``) — logically identical plans share one entry
    however they were prepared. The store version deliberately stays
    *out* of the key: it lives on the :class:`CachedResult` value, so a
    lookup after a write still finds the stale entry and the session can
    maintain it from the store's append delta instead of recomputing.
    The schema fingerprint covers sessions whose store was rebuilt from
    scratch. Backend options are canonicalised with
    :func:`freeze_options` and partition entries deliberately — even
    row-invariant tuning knobs like ``parallelism`` keep separate
    entries. That is conservative (a mixed-options caller re-executes
    once per spelling) but safe for options added later, and the
    serving flow fixes one options dict per service anyway.
    """
    return (
        backend_name,
        plan_token,
        fingerprint,
        freeze_options(options),
    )


@dataclass
class CachedResult:
    """One result-set cache entry, maintainable in place.

    ``version`` is the store version the rows are valid at — a lookup
    at a newer version triggers maintenance or eviction. ``fix_states``
    (``vec`` fixpoint plans only) maps each closed fixpoint's source
    :class:`~repro.ra.terms.Fix` term to a ``(total, state, domain)``
    triple — its materialised total as a *kernel-native* table of
    integer codes, the membership state iteration converged with, and
    the packing domain of that state — and ``output`` holds the
    head-ordered root output the decoded ``rows`` came from. Codes are
    domain-independent and survive append-only writes (the dictionary
    is append-only), so maintenance can seed the executor with these
    tables as-is and continue semi-naive iteration from where the
    cached execution converged — decoding only the rows the write
    added. ``kernel_name`` records which kernel produced the tables; a
    lookup under a different kernel must not reuse them.
    """

    rows: frozenset
    version: int
    fix_states: dict | None = None
    output: object | None = None
    kernel_name: str | None = None


def _freeze_value(value):
    if isinstance(value, Mapping):
        return tuple(
            (key, _freeze_value(value[key])) for key in sorted(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze_value(item) for item in value))
    return value


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one cache layer."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LruCache:
    """A small LRU map that counts hits and misses.

    ``max_size <= 0`` disables storage (every lookup misses) — used to
    switch caching off without changing the calling code.
    """

    def __init__(self, max_size: int = 256):
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get(self, key: Hashable):
        """The cached value for ``key`` (``None`` on a miss, counted)."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value
        self.misses += 1
        return None

    def peek(self, key: Hashable):
        """The cached value for ``key`` without counting the lookup.

        Used by the maintenance-aware result-cache flow: whether a found
        entry is a *hit* depends on whether it can be served (fresh or
        maintained), so the caller settles the counters afterwards with
        :meth:`count_hit`/:meth:`count_miss`.
        """
        value = self._data.get(key, _MISSING)
        return None if value is _MISSING else value

    def count_hit(self, key: Hashable | None = None) -> None:
        """Record a hit (and refresh ``key``'s LRU position)."""
        self.hits += 1
        if key is not None and key in self._data:
            self._data.move_to_end(key)

    def count_miss(self) -> None:
        """Record a miss."""
        self.misses += 1

    def put(self, key: Hashable, value) -> None:
        """Store ``value`` under ``key`` (no counter movement)."""
        if self.max_size <= 0:
            return
        self._data[key] = value
        self._data.move_to_end(key)
        if len(self._data) > self.max_size:
            self._data.popitem(last=False)

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """Return the cached value for ``key``, creating it on a miss."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value  # type: ignore[return-value]
        self.misses += 1
        value = factory()
        if self.max_size > 0:
            self._data[key] = value
            if len(self._data) > self.max_size:
                self._data.popitem(last=False)
        return value

    def evict(self, key: Hashable) -> bool:
        """Drop one entry (the adaptive planner's re-plan path).

        Returns True when the key was cached. Counters are untouched —
        eviction is bookkeeping, not a lookup.
        """
        return self._data.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._data),
            max_size=self.max_size,
        )
