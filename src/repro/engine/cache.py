"""Bounded LRU caches with hit/miss counters.

Both session cache layers (rewrite cache, per-backend plan cache) are
instances of :class:`LruCache`. Keys always embed the session's schema
fingerprint, so a schema change invalidates entries *semantically* —
stale entries simply never hit again and age out of the LRU order.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Hashable, Mapping, TypeVar

V = TypeVar("V")

_MISSING = object()


def freeze_options(options: Mapping | None) -> tuple | None:
    """Canonicalise an options mapping into a hashable cache-key part.

    Mappings become ``(key, value)`` tuples *sorted by key* (recursively,
    so nested dicts are canonical too) and lists/sets become tuples —
    two logically identical option dicts built in different insertion
    orders therefore freeze to the same key instead of fragmenting the
    LRU with duplicate entries. ``None`` and ``{}`` both freeze to
    ``None`` (no options).
    """
    if not options:
        return None
    return tuple(
        (key, _freeze_value(options[key])) for key in sorted(options)
    )


def _freeze_value(value):
    if isinstance(value, Mapping):
        return tuple(
            (key, _freeze_value(value[key])) for key in sorted(value)
        )
    if isinstance(value, (list, tuple)):
        return tuple(_freeze_value(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return tuple(sorted(_freeze_value(item) for item in value))
    return value


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one cache layer."""

    hits: int
    misses: int
    size: int
    max_size: int

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0


class LruCache:
    """A small LRU map that counts hits and misses.

    ``max_size <= 0`` disables storage (every lookup misses) — used to
    switch caching off without changing the calling code.
    """

    def __init__(self, max_size: int = 256):
        self.max_size = max_size
        self.hits = 0
        self.misses = 0
        self._data: "OrderedDict[Hashable, object]" = OrderedDict()

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get_or_create(self, key: Hashable, factory: Callable[[], V]) -> V:
        """Return the cached value for ``key``, creating it on a miss."""
        value = self._data.get(key, _MISSING)
        if value is not _MISSING:
            self.hits += 1
            self._data.move_to_end(key)
            return value  # type: ignore[return-value]
        self.misses += 1
        value = factory()
        if self.max_size > 0:
            self._data[key] = value
            if len(self._data) > self.max_size:
                self._data.popitem(last=False)
        return value

    def clear(self) -> None:
        """Drop all entries and reset the hit/miss counters."""
        self._data.clear()
        self.hits = 0
        self.misses = 0

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            size=len(self._data),
            max_size=self.max_size,
        )
