"""Backend adapters for the five execution substrates.

Each adapter wraps an existing engine behind the :class:`~repro.engine.
protocol.Backend` contract. Plan artefacts are tiny frozen carriers of
whatever the substrate actually executes:

* ``ra``        — the optimised µ-RA term (explained via the Fig. 17
                  cost-based planner),
* ``vec``       — the optimised µ-RA term compiled into a vectorized
                  columnar program (explained as the logical plan plus
                  the physical operator tree),
* ``sqlite``    — the generated ``WITH RECURSIVE`` SQL text (explained
                  via SQLite's own ``EXPLAIN QUERY PLAN``),
* ``gdb``       — the compiled graph patterns (explained as Cypher when
                  the query is Cypher-expressible, else as a pattern
                  listing),
* ``reference`` — the UCQT itself (the naive Fig. 5 evaluator has no
                  plan to speak of).

All adapters return *head-ordered* row sets, so results are directly
comparable across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.engine.protocol import register_backend
from repro.exec.compile import CompiledProgram, compile_term
from repro.exec.executor import ExecutionStats, execute_program
from repro.exec.kernels import default_kernel, get_kernel
from repro.exec.parallel import DEFAULT_MORSEL_SIZE, default_parallelism
from repro.exec.spill import default_shard_workers, default_spill_threshold
from repro.gdb.cypher import cypher_expressible, to_cypher
from repro.gdb.patterns import GraphPattern, ucqt_to_patterns
from repro.graph.evaluator import EvalBudget, as_budget
from repro.query.evaluation import evaluate_ucqt
from repro.query.model import UCQT
from repro.ra.evaluate import evaluate_term
from repro.ra.optimizer import optimize_term
from repro.ra.plan import explain as explain_ra_term
from repro.ra.stats import Estimator, validate_fixpoint_growth
from repro.ra.terms import RaTerm, Rel
from repro.ra.translate import TranslationContext, ucqt_to_ra
from repro.sql.generate import ucqt_to_sql
from repro.testing.faults import fault_point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.engine.session import GraphSession


def _validate_growth_option(options: Mapping | None) -> float | None:
    """Validate the shared ``fixpoint_growth`` estimator option."""
    if not options:
        return None
    growth = options.get("fixpoint_growth")
    if growth is None:
        return None
    return validate_fixpoint_growth(growth)


def _estimator_for(session: "GraphSession", options: Mapping | None):
    growth = _validate_growth_option(options)
    if growth is None:
        return None
    return Estimator(session.store, fixpoint_growth=growth)


# -- µ-RA engine (the PostgreSQL stand-in) ------------------------------------
#: The backend options the ``ra`` backend accepts.
RA_OPTIONS = frozenset({"fixpoint_growth"})


def _validate_ra_options(options: Mapping | None) -> None:
    if not options:
        return
    unknown = sorted(set(options) - RA_OPTIONS)
    if unknown:
        raise ValueError(
            f"unknown ra backend option(s) {', '.join(map(repr, unknown))}; "
            f"accepted options: {', '.join(sorted(RA_OPTIONS))}"
        )
    _validate_growth_option(options)


@dataclass(frozen=True)
class RaPlan:
    """An optimised µ-RA term plus the head column contract."""

    term: RaTerm
    head: tuple[str, ...]


class RaBackend:
    name = "ra"

    def prepare(
        self,
        session: "GraphSession",
        query: UCQT,
        options: Mapping | None = None,
    ) -> RaPlan:
        _validate_ra_options(options)
        term = optimize_term(
            ucqt_to_ra(query, TranslationContext()),
            session.store,
            estimator=_estimator_for(session, options),
        )
        return RaPlan(term=term, head=query.head)

    def prepare_from_term(
        self,
        session: "GraphSession",
        term: RaTerm,
        query: UCQT,
        options: Mapping | None = None,
    ) -> RaPlan:
        """Wrap a term the cost-based planner already optimised."""
        _validate_ra_options(options)
        return RaPlan(term=term, head=query.head)

    def execute(
        self,
        session: "GraphSession",
        plan: RaPlan,
        timeout_seconds: float | EvalBudget | None = None,
    ) -> frozenset[tuple]:
        return self.execute_with_stats(session, plan, timeout_seconds, None)

    def execute_with_stats(
        self,
        session: "GraphSession",
        plan: RaPlan,
        timeout_seconds: float | EvalBudget | None = None,
        stats: ExecutionStats | None = None,
    ) -> frozenset[tuple]:
        """Execute, optionally collecting per-operator actual row counts
        and exclusive timings (the calibration telemetry)."""
        fault_point("backend.execute.ra")
        columns, rows = evaluate_term(
            plan.term, session.store, as_budget(timeout_seconds), stats
        )
        if stats is not None:
            stats.programs += 1
        if columns != plan.head:
            order = tuple(columns.index(column) for column in plan.head)
            rows = {tuple(row[i] for i in order) for row in rows}
        return frozenset(rows)

    def explain(self, session: "GraphSession", plan: RaPlan) -> str:
        return explain_ra_term(plan.term, session.store)

    def result_token(self, plan: RaPlan):
        return (plan.term, plan.head)


# -- vectorized columnar engine -----------------------------------------------
#: The backend options the ``vec`` backend accepts (typos are rejected
#: at prepare time instead of silently ignored).
VEC_OPTIONS = frozenset(
    {
        "kernel",
        "parallelism",
        "morsel_size",
        "fixpoint_growth",
        "spill_path",
        "spill_threshold_bytes",
        "shard_workers",
    }
)


def _positive_int_option(options: Mapping, key: str) -> int | None:
    value = options.get(key)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int) or value < 1:
        raise ValueError(
            f"vec backend option {key!r} must be a positive integer, "
            f"got {value!r}"
        )
    return value


def _validate_vec_options(
    options: Mapping | None,
) -> tuple[
    str | None, int | None, int | None, str | None, int | None, int | None
]:
    """Check option keys and values; returns (kernel, parallelism,
    morsel_size, spill_path, spill_threshold_bytes, shard_workers)."""
    if not options:
        return None, None, None, None, None, None
    unknown = sorted(set(options) - VEC_OPTIONS)
    if unknown:
        raise ValueError(
            f"unknown vec backend option(s) {', '.join(map(repr, unknown))}; "
            f"accepted options: {', '.join(sorted(VEC_OPTIONS))}"
        )
    kernel = options.get("kernel")
    if kernel is not None:
        get_kernel(kernel)  # fail at prepare time, not execute time
    _validate_growth_option(options)
    spill_path = options.get("spill_path")
    if spill_path is not None and not isinstance(spill_path, str):
        raise ValueError(
            f"vec backend option 'spill_path' must be a string, "
            f"got {spill_path!r}"
        )
    return (
        kernel,
        _positive_int_option(options, "parallelism"),
        _positive_int_option(options, "morsel_size"),
        spill_path,
        _positive_int_option(options, "spill_threshold_bytes"),
        _positive_int_option(options, "shard_workers"),
    )


@dataclass(frozen=True)
class VecPlan:
    """An optimised µ-RA term compiled to a columnar program.

    ``kernel`` pins a kernel implementation by name (the ``kernel``
    backend option); ``None`` means the fastest available one.
    ``parallelism``/``morsel_size`` configure morsel-driven parallel
    execution; ``None`` defers to the ``REPRO_VEC_PARALLELISM``
    environment default (sequential when unset) and the kernel-layer
    default morsel size. The out-of-core trio works the same way:
    ``spill_threshold_bytes`` (default ``REPRO_SPILL_THRESHOLD_BYTES``)
    turns on memmap spill of oversized tables under ``spill_path``
    (default ``REPRO_SPILL_PATH``), and ``shard_workers`` (default
    ``REPRO_SHARD_WORKERS``) > 1 fans morsels out over worker
    *processes* instead of threads.
    """

    term: RaTerm
    program: CompiledProgram
    head: tuple[str, ...]
    kernel: str | None = None
    parallelism: int | None = None
    morsel_size: int | None = None
    spill_path: str | None = None
    spill_threshold_bytes: int | None = None
    shard_workers: int | None = None


class VecBackend:
    """Columnar execution of the same optimised plans the ``ra`` backend
    runs tuple-at-a-time: base tables are dictionary-encoded once per
    store snapshot, operators move whole integer columns, and fixpoints
    iterate semi-naively over delta frontiers (:mod:`repro.exec`). With
    ``{"parallelism": N}`` the heavy operators fan out over row morsels
    on a thread pool (:mod:`repro.exec.parallel`)."""

    name = "vec"

    def prepare(
        self,
        session: "GraphSession",
        query: UCQT,
        options: Mapping | None = None,
    ) -> VecPlan:
        (
            kernel, parallelism, morsel_size,
            spill_path, spill_threshold_bytes, shard_workers,
        ) = _validate_vec_options(options)
        term = optimize_term(
            ucqt_to_ra(query, TranslationContext()),
            session.store,
            estimator=_estimator_for(session, options),
        )
        return VecPlan(
            term=term,
            program=compile_term(term, session.store),
            head=query.head,
            kernel=kernel,
            parallelism=parallelism,
            morsel_size=morsel_size,
            spill_path=spill_path,
            spill_threshold_bytes=spill_threshold_bytes,
            shard_workers=shard_workers,
        )

    def prepare_from_term(
        self,
        session: "GraphSession",
        term: RaTerm,
        query: UCQT,
        options: Mapping | None = None,
    ) -> VecPlan:
        """Compile a term the cost-based planner already optimised."""
        (
            kernel, parallelism, morsel_size,
            spill_path, spill_threshold_bytes, shard_workers,
        ) = _validate_vec_options(options)
        return VecPlan(
            term=term,
            program=compile_term(term, session.store),
            head=query.head,
            kernel=kernel,
            parallelism=parallelism,
            morsel_size=morsel_size,
            spill_path=spill_path,
            spill_threshold_bytes=spill_threshold_bytes,
            shard_workers=shard_workers,
        )

    def execute(
        self,
        session: "GraphSession",
        plan: VecPlan,
        timeout_seconds: float | EvalBudget | None = None,
    ) -> frozenset[tuple]:
        return self.execute_with_stats(session, plan, timeout_seconds, None)

    def execute_with_stats(
        self,
        session: "GraphSession",
        plan: VecPlan,
        timeout_seconds: float | EvalBudget | None = None,
        stats: ExecutionStats | None = None,
        fix_capture: dict | None = None,
    ) -> frozenset[tuple]:
        """Execute, optionally collecting per-operator actual
        cardinalities (the adaptive planner's feedback signal).

        ``fix_capture``, when a dict, receives the materialised totals
        of the program's closed fixpoints (integer-code rows keyed by
        source :class:`~repro.ra.terms.Fix` term) — the states the
        result cache stores for incremental maintenance after writes.
        """
        fault_point("backend.execute.vec")
        parallelism = (
            plan.parallelism
            if plan.parallelism is not None
            else default_parallelism()
        )
        spill_threshold = (
            plan.spill_threshold_bytes
            if plan.spill_threshold_bytes is not None
            else default_spill_threshold()
        )
        shard_workers = (
            plan.shard_workers
            if plan.shard_workers is not None
            else default_shard_workers()
        )
        # Prefer the session's long-lived spill manager: named base-table
        # spills then persist across executions at the same store version.
        spill_manager = None
        if spill_threshold is not None or shard_workers > 1:
            manager_for = getattr(session, "spill_manager", None)
            if callable(manager_for):
                spill_manager = manager_for(plan.spill_path)
        return execute_program(
            plan.program,
            session.store,
            head=plan.head,
            budget=as_budget(timeout_seconds),
            kernel=get_kernel(plan.kernel) if plan.kernel else None,
            parallelism=parallelism,
            morsel_size=plan.morsel_size,
            stats=stats,
            fix_capture=fix_capture,
            spill_threshold_bytes=spill_threshold,
            spill_path=plan.spill_path,
            spill_manager=spill_manager,
            shard_workers=shard_workers,
        )

    def explain(self, session: "GraphSession", plan: VecPlan) -> str:
        logical = explain_ra_term(plan.term, session.store)
        physical = plan.program.render()
        kernel = plan.kernel or default_kernel().NAME
        parallelism = (
            plan.parallelism
            if plan.parallelism is not None
            else default_parallelism()
        )
        config = f"{kernel} kernels"
        if parallelism > 1:
            config += (
                f", parallelism={parallelism}, "
                f"morsel_size={plan.morsel_size or DEFAULT_MORSEL_SIZE}"
            )
        spill_threshold = (
            plan.spill_threshold_bytes
            if plan.spill_threshold_bytes is not None
            else default_spill_threshold()
        )
        shard_workers = (
            plan.shard_workers
            if plan.shard_workers is not None
            else default_shard_workers()
        )
        if spill_threshold is not None:
            config += f", spill_threshold_bytes={spill_threshold}"
        if shard_workers > 1:
            config += f", shard_workers={shard_workers}"
        return (
            f"-- logical µ-RA plan --\n{logical}\n\n"
            f"-- physical columnar plan ({config}) --\n{physical}"
        )

    def result_token(self, plan: VecPlan):
        return (plan.term, plan.head)


def plan_read_relations(plan) -> tuple[str, ...] | None:
    """The store relations a prepared plan reads, when statically known.

    Used by the result cache's maintenance flow: a stale entry whose
    plan touches none of the changed relations is simply re-stamped to
    the current store version. ``None`` means the read set is unknown
    (``sqlite``/``gdb``/``reference`` plans) and the caller must fall
    back to maintenance or invalidation.
    """
    if isinstance(plan, VecPlan):
        return plan.program.scan_tables
    if isinstance(plan, RaPlan):
        return tuple(
            sorted(
                {
                    node.name
                    for node in plan.term.walk()
                    if isinstance(node, Rel)
                }
            )
        )
    return None


# -- generated SQL on SQLite --------------------------------------------------
@dataclass(frozen=True)
class SqlPlan:
    """The generated recursive SQL text."""

    sql: str


class SqliteEngineBackend:
    name = "sqlite"

    def prepare(
        self,
        session: "GraphSession",
        query: UCQT,
        options: Mapping | None = None,
    ) -> SqlPlan:
        return SqlPlan(sql=ucqt_to_sql(query, session.store))

    def execute(
        self,
        session: "GraphSession",
        plan: SqlPlan,
        timeout_seconds: float | EvalBudget | None = None,
    ) -> frozenset[tuple]:
        fault_point("backend.execute.sqlite")
        return session.sqlite.execute_sql(plan.sql, timeout_seconds)

    def explain(self, session: "GraphSession", plan: SqlPlan) -> str:
        query_plan = session.sqlite.explain_query_plan(plan.sql)
        return f"{plan.sql}\n\n-- EXPLAIN QUERY PLAN --\n{query_plan}"

    def result_token(self, plan: SqlPlan):
        return plan.sql


# -- graph-pattern expansion (the Neo4j stand-in) -----------------------------
@dataclass(frozen=True)
class GdbPlan:
    """Compiled graph patterns, plus Cypher when expressible."""

    patterns: tuple[GraphPattern, ...]
    cypher: str | None


class GdbBackend:
    name = "gdb"

    def prepare(
        self,
        session: "GraphSession",
        query: UCQT,
        options: Mapping | None = None,
    ) -> GdbPlan:
        cypher = to_cypher(query) if cypher_expressible(query) else None
        return GdbPlan(patterns=tuple(ucqt_to_patterns(query)), cypher=cypher)

    def execute(
        self,
        session: "GraphSession",
        plan: GdbPlan,
        timeout_seconds: float | EvalBudget | None = None,
    ) -> frozenset[tuple]:
        fault_point("backend.execute.gdb")
        budget = as_budget(timeout_seconds)
        result: set[tuple] = set()
        for pattern in plan.patterns:
            result |= session.pattern_engine.evaluate_pattern(pattern, budget)
        return frozenset(result)

    def explain(self, session: "GraphSession", plan: GdbPlan) -> str:
        if plan.cypher is not None:
            return plan.cypher
        lines = []
        for index, pattern in enumerate(plan.patterns):
            lines.append(f"-- pattern {index + 1}/{len(plan.patterns)} --")
            for edge in pattern.edges:
                lines.append(f"  ({edge.source})-[{edge.expr}]->({edge.target})")
            for var, labels in pattern.node_labels:
                lines.append(f"  {var} in {{{', '.join(sorted(labels))}}}")
        return "\n".join(lines)


# -- naive reference evaluator ------------------------------------------------
@dataclass(frozen=True)
class ReferencePlan:
    """The reference evaluator interprets the UCQT directly."""

    query: UCQT


class ReferenceBackend:
    name = "reference"

    def prepare(
        self,
        session: "GraphSession",
        query: UCQT,
        options: Mapping | None = None,
    ) -> ReferencePlan:
        return ReferencePlan(query=query)

    def execute(
        self,
        session: "GraphSession",
        plan: ReferencePlan,
        timeout_seconds: float | EvalBudget | None = None,
    ) -> frozenset[tuple]:
        fault_point("backend.execute.reference")
        return evaluate_ucqt(
            session.graph, plan.query, as_budget(timeout_seconds)
        )

    def explain(self, session: "GraphSession", plan: ReferencePlan) -> str:
        return f"-- naive CQT evaluation (no plan) --\n{plan.query}"


register_backend(RaBackend())
register_backend(VecBackend())
register_backend(SqliteEngineBackend())
register_backend(GdbBackend())
register_backend(ReferenceBackend())
