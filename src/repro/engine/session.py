"""``GraphSession`` — the single entry point over all execution substrates.

Construct a session once from a :class:`~repro.graph.model.PropertyGraph`
and a :class:`~repro.schema.model.GraphSchema`; it lazily builds and owns
every derived artefact (relational store, in-memory SQLite database,
pattern engine) and serves ``session.execute(query, backend=...)`` through
the uniform :class:`~repro.engine.protocol.Backend` protocol.

Two cache layers sit between parsing and execution, both keyed on
``(normalised query text, schema fingerprint, rewrite options)``:

* the **rewrite cache** memoises :func:`repro.core.rewriter.rewrite_query`
  (type inference + merging + redundancy removal is the expensive
  schema-dependent work), and
* the **plan cache** memoises each backend's compiled artefact — the
  optimised µ-RA term, the generated recursive SQL, or the compiled
  graph patterns.

A repeated query therefore pays only for execution; hit/miss counters are
exposed via :attr:`GraphSession.cache_stats`. The schema fingerprint makes
invalidation automatic: :meth:`GraphSession.update_schema` changes the
fingerprint, so every cached entry stops matching.

A third, **opt-in** layer removes execution too: constructing the
session with ``result_cache_size > 0`` caches whole result sets keyed on
``(backend, structural plan token, schema fingerprint, frozen backend
options)`` — repeated traffic over an unchanged store becomes an O(1)
lookup. The store version lives *inside* each entry
(:class:`~repro.engine.cache.CachedResult`): after an append-only write
a stale entry is **maintained** instead of recomputed — the cached
``vec`` fixpoint totals re-seed the semi-naive executor with a frontier
built from the store's append delta, and plans that read none of the
changed relations are simply re-stamped. Barrier writes (new tables,
replacements, deletions) or non-maintainable plans fall back to
eviction. ``REPRO_INCREMENTAL=0`` disables maintenance globally. The
layer is off by default because timed comparisons (the benchmark
harness) must measure execution, not cache hits; the serving entry
points (``repro batch`` / ``repro serve``) switch it on.
"""

from __future__ import annotations

import dataclasses
import hashlib
import pathlib
import time
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.rewriter import RewriteOptions, RewriteResult, rewrite_query
from repro.engine import backends as _backends  # noqa: F401 - registers adapters
from repro.engine.cache import (
    CachedResult,
    CacheStats,
    LruCache,
    freeze_options,
    result_cache_key,
)
from repro.engine.options import (
    DEFAULT_EXEC_OPTIONS,
    ExecOptions,
    warn_legacy_exec_kwargs,
)
from repro.engine.protocol import Backend, available_backends, get_backend
from repro.engine.report import ExplainReport
from repro.exec.dictionary import encoding_appends, tables_encoded
from repro.exec.executor import CAPTURE_KERNEL, CAPTURE_OUTPUT, ExecutionStats
from repro.exec.kernels import default_kernel, get_kernel
from repro.exec.spill import (
    SpillManager,
    default_shard_workers,
    default_spill_threshold,
)
from repro.engine.resilience import BreakerConfig, CircuitBreaker, RetryPolicy
from repro.errors import (
    BackendUnavailableError,
    InjectedFault,
    QueryTimeout,
    ReproError,
)
from repro.exec.maintain import maintain_program, maintainable
from repro.gdb.engine import PatternEngine
from repro.graph.evaluator import EvalBudget, ResourceBudget, as_budget
from repro.graph.model import UNLABELLED, PropertyGraph
from repro.planner import (
    CalibrationLog,
    CalibrationState,
    CostProfile,
    PlanChoice,
    calibrate_from_log,
    enumerate_plan_candidates,
    estimate_kind_rows,
    plan_query,
    rank_candidates,
    validate_planner,
)
from repro.query.model import UCQT, drop_unsatisfiable_disjuncts
from repro.query.parser import parse_query
from repro.ra.stats import Estimator, store_statistics
from repro.schema.model import GraphSchema
from repro.schema.validation import check_consistency
from repro.sql.sqlite_backend import SqliteBackend
from repro.storage.relational import RelationalStore, incremental_enabled
from repro.testing.faults import fault_point


def schema_fingerprint(
    schema: GraphSchema, aliases: Mapping[str, tuple[str, ...]] | None = None
) -> str:
    """A stable digest of a schema's semantic content.

    Covers node labels with their property specifications, the schema
    edge triples, and any alias views layered on top — everything the
    rewriter and the translators can observe. The schema's display name
    is deliberately excluded.
    """
    digest = hashlib.sha256()
    for node in sorted(schema.nodes(), key=lambda n: n.label):
        digest.update(node.label.encode())
        for spec in node.properties:
            digest.update(f"|{spec.key}:{spec.data_type}".encode())
        digest.update(b"\n")
    for edge in sorted(
        schema.edges(),
        key=lambda e: (e.source_label, e.edge_label, e.target_label),
    ):
        digest.update(
            f"{edge.source_label}-[{edge.edge_label}]->{edge.target_label}\n".encode()
        )
    for alias in sorted(aliases or {}):
        digest.update(f"{alias}={','.join(aliases[alias])}\n".encode())
    return digest.hexdigest()[:16]


# The normalisation now lives in repro.query.model so the planner can
# apply it per candidate; the session keeps using it under this name.
_drop_unsatisfiable_disjuncts = drop_unsatisfiable_disjuncts


@dataclass
class PreparedQuery:
    """A query bound to one backend with its compiled plan.

    Executing a prepared query touches neither the rewriter nor the
    optimiser — it holds direct references to the cached artefacts.
    A ``plan`` of None means the schema proved the query unsatisfiable.

    The handle records the schema fingerprint it was prepared under;
    if the session's schema changes, the next ``execute``/``explain``
    transparently re-prepares against the new schema instead of running
    a stale plan over the rebuilt store.

    Under the cost-based planner (``planner="cost"``), ``choice`` holds
    the ranked candidate table (``explain`` renders it), executions on
    stats-capable backends populate ``last_execution_stats`` with actual
    cardinalities next to the winner's estimate, and every execution
    feeds the session's adaptive feedback loop.
    """

    session: "GraphSession"
    backend: Backend
    query: UCQT
    executed: UCQT
    rewrite_result: RewriteResult | None
    plan: object | None
    fingerprint: str
    rewrite: bool
    options: "RewriteOptions | None"
    backend_options: Mapping | None = None
    planner: str = "greedy"
    choice: PlanChoice | None = None
    plan_key: tuple | None = None
    last_execution_stats: ExecutionStats | None = None
    #: Whether the schema rewrite actually ran. Differs from ``rewrite``
    #: (the request) when the session's conformance gate disabled
    #: rewriting over a non-conforming instance (paper Def. 3 — the
    #: rewriting is only sound on instances that conform to the schema).
    rewrite_applied: bool = True
    #: Resource-governor caps resolved from :class:`ExecOptions` at
    #: prepare time: cumulative materialised rows / approximate bytes
    #: (``None`` = ungoverned, wall clock only).
    max_rows: int | None = None
    max_bytes: int | None = None
    #: Whether a retryable failure degrades down the backend chain.
    fallback: bool = False

    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def reverted(self) -> bool:
        """True when the executed query is the original (the rewriter
        kept it, or the cost planner chose it over the rewrites)."""
        return self.rewrite_result.reverted if self.rewrite_result else True

    def _refresh_if_stale(self) -> None:
        stale = self.fingerprint != self.session.schema_fingerprint
        if not stale and self.rewrite:
            # Data writes can flip instance conformance, and with it
            # whether the schema rewrite is sound to execute — the plan
            # must follow the gate, not the fingerprint alone.
            stale = self.session.rewrite_sound() != self.rewrite_applied
        if stale:
            renewed = self.session.prepare(
                self.query,
                self.backend.name,
                rewrite=self.rewrite,
                options=self.options,
                backend_options=self.backend_options,
                planner=self.planner,
            )
            # Per-call governance survives the re-prepare (the renewed
            # handle resolved only the session defaults).
            renewed.max_rows = self.max_rows
            renewed.max_bytes = self.max_bytes
            renewed.fallback = self.fallback
            self.__dict__.update(renewed.__dict__)

    def result_cache_key(self) -> tuple | None:
        """This plan's result-set cache key (None: not cacheable).

        ``None`` when the session's result cache is disabled, the plan is
        empty, or the backend doesn't expose a structural plan token.
        """
        return self.session._result_key(
            self.backend, self.plan, self.backend_options
        )

    def budget(self, timeout_seconds: "float | EvalBudget | None"):
        """The budget one execution runs under.

        A budget handed in (the batch path's shared budget) passes
        through; otherwise the handle's governor caps wrap the timeout
        in a :class:`~repro.graph.evaluator.ResourceBudget`. Ungoverned
        handles return the plain float so the historical per-backend
        wall-clock behaviour is bit-identical.
        """
        if isinstance(timeout_seconds, EvalBudget):
            return timeout_seconds
        if self.max_rows is None and self.max_bytes is None:
            return timeout_seconds
        return ResourceBudget(timeout_seconds, self.max_rows, self.max_bytes)

    def execute(
        self, timeout_seconds: "float | EvalBudget | None" = None
    ) -> frozenset[tuple]:
        self._refresh_if_stale()
        if self.fallback and not isinstance(timeout_seconds, EvalBudget):
            return self.session._execute_resilient(self, timeout_seconds)
        return self._execute_once(timeout_seconds)

    def _execute_once(
        self, timeout_seconds: "float | EvalBudget | None" = None
    ) -> frozenset[tuple]:
        self._refresh_if_stale()
        if self.plan is None:
            return frozenset()
        timeout_seconds = self.budget(timeout_seconds)
        key = self.result_cache_key()
        if key is not None:
            hit = self.session._lookup_result(self, key, timeout_seconds)
            if hit is not None:
                return hit
        version = self.session.store.version
        capture: dict | None = None
        if (
            key is not None
            and isinstance(self.plan, _backends.VecPlan)
            and self.session._incremental_active()
        ):
            capture = {}
        stats: ExecutionStats | None = None
        runner = getattr(self.backend, "execute_with_stats", None)
        started = time.perf_counter()
        if runner is not None:
            # Stats-capable backends (ra/vec) always run instrumented:
            # per-operator (estimate, actual) pairs and exclusive
            # timings feed the session's calibration log.
            stats = ExecutionStats()
            if capture is not None:
                rows = runner(
                    self.session, self.plan, timeout_seconds, stats,
                    fix_capture=capture,
                )
            else:
                rows = runner(self.session, self.plan, timeout_seconds, stats)
        else:
            rows = self.backend.execute(
                self.session, self.plan, timeout_seconds
            )
        elapsed = time.perf_counter() - started
        if self.choice is not None:
            if stats is None:
                stats = ExecutionStats(programs=1)
            stats.estimated_rows += self.choice.winner.rows
            stats.actual_rows += len(rows)
            stats.peak_estimate_bytes = max(
                stats.peak_estimate_bytes, self.choice.peak_bytes
            )
            self.session._observe_execution(self, len(rows), stats)
        if stats is not None:
            self.last_execution_stats = stats
        self.session._record_telemetry(self, len(rows), stats, elapsed)
        if key is not None:
            self.session._store_result(key, rows, version, capture)
        return rows

    def explain(self) -> ExplainReport:
        """The structured explain report (renders to the classic text)."""
        self._refresh_if_stale()
        session = self.session
        plan_text = None
        result_cache = maintenance = None
        if self.plan is not None:
            plan_text = self.backend.explain(session, self.plan)
            if self.result_cache_key() is not None:
                result_cache = session._result_cache.stats()
                counters = session._maintenance
                if counters.results_maintained or counters.results_invalidated:
                    maintenance = counters
        resilience = session.resilience_stats()
        if not any(resilience[k] for k in ("retries", "degraded", "breaker_opens", "breaker_skips")) and all(
            breaker["state"] == "closed"
            for breaker in resilience["breakers"].values()
        ):
            resilience = None  # untouched session: render byte-identical
        return ExplainReport(
            backend=self.backend_name,
            query=str(self.query),
            plan_text=plan_text,
            choice=self.choice,
            result_cache=result_cache,
            maintenance=maintenance,
            q_error=session._explain_q_error(self.backend_name),
            resilience=resilience,
        )


class GraphSession:
    """Unified engine façade over one property graph and its schema."""

    def __init__(
        self,
        graph: PropertyGraph,
        schema: GraphSchema,
        *,
        store: RelationalStore | None = None,
        aliases: Mapping[str, tuple[str, ...]] | None = None,
        rewrite_options: RewriteOptions | None = None,
        cache_size: int = 256,
        result_cache_size: int = 0,
        planner: str = "greedy",
        replan_error_threshold: float = 8.0,
        exec_options: ExecOptions | None = None,
        calibration: "CalibrationState | str | pathlib.Path | None" = None,
        workload: str = "default",
        breaker_config: BreakerConfig | None = None,
        retry_policy: RetryPolicy | None = None,
    ):
        #: Session-default execution options; per-call ``exec_options``
        #: (and the deprecated per-call kwargs) overlay these.
        self.exec_options = DEFAULT_EXEC_OPTIONS.merged(exec_options)
        if planner == "greedy" and self.exec_options.planner is not None:
            planner = self.exec_options.planner
        if (
            result_cache_size == 0
            and self.exec_options.result_cache_size is not None
        ):
            result_cache_size = self.exec_options.result_cache_size
        #: Session-level incremental-maintenance toggle (None: follow
        #: the ``REPRO_INCREMENTAL`` process default).
        self._incremental = self.exec_options.incremental
        self._graph = graph
        self._schema = schema
        self._store = store
        # The store version the graph model reflects: store appends are
        # replayed onto the graph lazily (see the ``graph`` property),
        # so the graph-model engines keep agreeing with the relational
        # backends under writes.
        self._graph_version = store.version if store is not None else 0
        if store is not None:
            # An injected store brings its own alias views; any aliases
            # declared here are added on top (conflicts are API misuse).
            self._aliases: dict[str, tuple[str, ...]] = dict(store.aliases)
            for name, members in (aliases or {}).items():
                members = tuple(members)
                existing = self._aliases.get(name)
                if existing is None:
                    store.add_alias(name, members)
                    self._aliases[name] = members
                elif existing != members:
                    raise ValueError(
                        f"alias {name!r} declared as {members} but the "
                        f"injected store defines it as {existing}"
                    )
        else:
            self._aliases = {k: tuple(v) for k, v in (aliases or {}).items()}
        self.rewrite_options = rewrite_options or RewriteOptions()
        #: Default planning mode: ``"greedy"`` runs the classic linear
        #: pipeline; ``"cost"`` enumerates candidates and picks by cost.
        self.planner = validate_planner(planner)
        if replan_error_threshold < 1.0:
            raise ValueError(
                "replan_error_threshold is an error *factor* "
                f"(max/min >= 1), got {replan_error_threshold!r}"
            )
        #: Estimated-vs-actual error factor beyond which a cost-planned
        #: entry is evicted from the plan cache and planned again
        #: against the corrected statistics.
        self.replan_error_threshold = replan_error_threshold
        self._planner_replans = 0
        self._planner_observations = 0
        self._sqlite: SqliteBackend | None = None
        self._pattern_engine: PatternEngine | None = None
        self._fingerprint: str | None = None
        self._rewrite_cache = LruCache(cache_size)
        self._plan_cache = LruCache(cache_size)
        # Whole result sets, keyed on (backend, plan token, fingerprint,
        # frozen options); the store version lives inside each entry so
        # stale results can be incrementally maintained after appends.
        # Off by default: repeated timed executions must measure
        # execution — serving flows opt in.
        self._result_cache = LruCache(result_cache_size)
        #: Counters of the result-maintenance flow (maintained vs
        #: invalidated entries, delta rows applied, encoding appends).
        self._maintenance = ExecutionStats()
        #: Per-operator (estimate, actual, seconds) telemetry of every
        #: execution — the raw material ``calibrate()`` fits cost
        #: profiles from and Q-error summaries are computed over.
        self.calibration_log = CalibrationLog()
        #: Workload tag stamped onto telemetry records (Q-error
        #: summaries group by it). Callers may reassign it between
        #: queries to segment the log.
        self.workload_tag = workload
        if calibration is not None and not isinstance(
            calibration, CalibrationState
        ):
            calibration = CalibrationState.load(calibration)
        #: Fitted cost profiles the planner ranks with (None until
        #: ``calibrate()`` runs or a persisted state is loaded).
        self._calibration: CalibrationState | None = calibration
        #: Memoised instance-conformance verdict: (store version, bool).
        #: Schema rewriting is only sound on conforming instances
        #: (paper Def. 3) — ``rewrite_sound`` gates it per store version.
        self._conformance: tuple[int, bool] | None = None
        self._rewrites_gated = 0
        #: Graceful-degradation state: one circuit breaker per backend
        #: (sessions are per tenant in the serving tier, so breakers are
        #: per (tenant, backend) there), plus aggregate counters
        #: surfaced through ``planner_stats`` and ``/metrics``.
        self.breaker_config = breaker_config or BreakerConfig()
        self.retry_policy = retry_policy or RetryPolicy()
        self._breakers: dict[str, CircuitBreaker] = {}
        self._resilience = {
            "retries": 0,
            "degraded": 0,
            "breaker_opens": 0,
            "breaker_skips": 0,
        }
        #: Lazily created spill directory owner shared by every
        #: out-of-core execution in this session (named base-table
        #: spill files are then reused across executions at one store
        #: version); closed — files and all — with the session.
        self._spill_manager: SpillManager | None = None
        #: Memory-dimension planning counters (``planner_stats``).
        self._spill_decisions = 0
        self._shard_decisions = 0
        self._last_peak_estimate = 0.0

    # -- derived artefacts (built lazily, owned by the session) -----------
    @property
    def schema(self) -> GraphSchema:
        return self._schema

    @property
    def schema_fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = schema_fingerprint(self._schema, self._aliases)
        return self._fingerprint

    @property
    def graph(self) -> PropertyGraph:
        """The property graph, caught up with any store appends.

        The relational store is the write surface; the graph model is
        replayed from its append deltas on read so the ``gdb`` and
        ``reference`` engines answer over the same data as ``ra``/
        ``vec``/``sqlite``. Barrier writes (replacements, new tables)
        and disabled maintenance cannot be replayed — the graph then
        keeps its pre-write contents for those tables.
        """
        self._sync_graph()
        return self._graph

    def _sync_graph(self) -> None:
        store = self._store
        if store is None or store.version == self._graph_version:
            return
        deltas = store.delta_since(self._graph_version)
        self._graph_version = store.version
        if deltas is None:
            return
        graph = self._graph
        node_tables = store.node_tables
        for name in sorted(deltas):
            if name in store.aliases:
                continue  # alias views recompute from their members
            rows = deltas[name]
            if name in node_tables:
                columns = store.table(name).columns
                for row in rows:
                    node = row[0]
                    if (
                        graph.has_node(node)
                        and graph.node_label(node) not in (name, UNLABELLED)
                    ):
                        # Multi-label ids are relational-only; the graph
                        # model keeps the first label it saw.
                        continue
                    graph.add_node(node, name, dict(zip(columns[1:], row[1:])))
            else:
                for row in rows:
                    if len(row) != 2:
                        continue
                    source, target = row
                    for endpoint in (source, target):
                        if not graph.has_node(endpoint):
                            graph.add_node(endpoint, UNLABELLED)
                    graph.add_edge(source, name, target)

    @property
    def store(self) -> RelationalStore:
        if self._store is None:
            store = RelationalStore.from_graph(self._graph, self._schema)
            for alias in sorted(self._aliases):
                store.add_alias(alias, self._aliases[alias])
            self._store = store
            self._graph_version = store.version
        return self._store

    @property
    def sqlite(self) -> SqliteBackend:
        if self._sqlite is None:
            self._sqlite = SqliteBackend(self.store)
        else:
            self._sqlite.sync()
        return self._sqlite

    @property
    def pattern_engine(self) -> PatternEngine:
        self._sync_graph()  # the engine reads the graph live
        if self._pattern_engine is None:
            self._pattern_engine = PatternEngine(self._graph)
        return self._pattern_engine

    def snapshot_session(self, version: int) -> "GraphSession | None":
        """A session over this session's store *as of* ``version``.

        The serving tier's snapshot-isolated read path: a read admitted
        at store version ``v`` can execute after append-only writes
        moved the store on and still see exactly the rows of ``v`` —
        the store reconstructs the pinned view by subtracting its
        append delta (:meth:`~repro.storage.relational.RelationalStore.
        snapshot_at`) and this session wraps it for the relational
        backends (``ra``/``vec``; the graph-model engines read the live
        graph and are not snapshot-capable).

        Returns ``self`` when ``version`` is current, ``None`` when no
        append-only delta covers the interval (barrier write, truncated
        log, maintenance disabled) — callers then fall back to the live
        session. Snapshot sessions share nothing with the live caches
        (fresh rewrite/plan caches, no result cache): they exist for
        the rare read that straddled a write, not for the hot path.
        """
        snapshot = self.store.snapshot_at(version)
        if snapshot is None:
            return None
        if snapshot is self.store:
            return self
        fault_point("snapshot.rebuild")
        return GraphSession(
            self._graph,
            self._schema,
            store=snapshot,
            rewrite_options=self.rewrite_options,
            result_cache_size=0,
            planner=self.planner,
            exec_options=dataclasses.replace(
                self.exec_options, result_cache_size=0
            ),
            calibration=self._calibration,
            workload=self.workload_tag,
        )

    def update_schema(self, schema: GraphSchema) -> None:
        """Swap the schema: derived artefacts rebuild lazily and the new
        fingerprint retires every cached rewrite and plan."""
        self._schema = schema
        self._fingerprint = None
        self._conformance = None
        if self._sqlite is not None:
            self._sqlite.close()
        self._sqlite = None
        self._store = None

    # -- the conformance gate (rewrite soundness, paper Def. 3) ------------
    def rewrite_sound(self) -> bool:
        """True when schema rewriting is sound over the current instance.

        The paper's rewriting (Prop. 4.3) assumes the database conforms
        to the schema (Def. 3): on a non-conforming instance a rewrite
        can prune tuples the original query would return — nested
        bounded repetitions over out-of-schema edges were the observed
        symptom. ``prepare`` therefore checks conformance and falls back
        to the unrewritten pipeline when it fails.

        The verdict is memoised per store version. A non-conforming
        verdict *latches* across append-only writes (appends cannot
        remove the violating rows); a conforming verdict is advanced by
        checking only the appended delta. Barrier writes re-run the full
        check.
        """
        version = self.store.version
        cached = self._conformance
        if cached is not None and cached[0] == version:
            return cached[1]
        conforms: bool | None = None
        if cached is not None:
            deltas = self.store.delta_since(cached[0])
            if deltas is not None:
                conforms = cached[1] and self._delta_conforms(deltas)
        if conforms is None:
            conforms = check_consistency(
                self.graph, self._schema, max_violations=1
            ).consistent
        self._conformance = (version, conforms)
        return conforms

    def _delta_conforms(self, deltas: Mapping[str, frozenset]) -> bool:
        """Def. 3 restricted to an append delta's rows (conservative)."""
        store = self.store
        graph = self.graph  # synced past the delta
        node_tables = store.node_tables
        aliases = store.aliases
        allowed = {
            (edge.source_label, edge.edge_label, edge.target_label)
            for edge in self._schema.edges()
        }
        for name in deltas:
            if name in aliases:
                continue  # alias views mirror their member tables
            rows = deltas[name]
            if name in node_tables:
                if not self._schema.has_node_label(name):
                    return False
                spec = self._schema.property_spec(name)
                columns = store.table(name).columns
                for row in rows:
                    for key, value in zip(columns[1:], row[1:]):
                        if value is None:
                            continue  # absent property, not a violation
                        if key not in spec or not spec[key].accepts(value):
                            return False
            else:
                for row in rows:
                    if len(row) != 2:
                        return False
                    source, target = row
                    if not (graph.has_node(source) and graph.has_node(target)):
                        return False
                    triple = (
                        graph.node_label(source), name, graph.node_label(target)
                    )
                    if triple not in allowed:
                        return False
        return True

    # -- the pipeline, cached ----------------------------------------------
    def rewrite(
        self,
        query: UCQT | str,
        options: RewriteOptions | None = None,
    ) -> RewriteResult:
        """Schema-rewrite a query, memoised on (query, fingerprint, options)."""
        query = self._as_query(query)
        options = options or self.rewrite_options
        key = (str(query), self.schema_fingerprint, options)
        return self._rewrite_cache.get_or_create(
            key, lambda: rewrite_query(query, self._schema, options)
        )

    def prepare(
        self,
        query: UCQT | str,
        backend: str | None = None,
        *,
        rewrite: bool = True,
        options: RewriteOptions | None = None,
        backend_options: Mapping | None = None,
        planner: str | None = None,
        exec_options: ExecOptions | None = None,
    ) -> PreparedQuery:
        """Compile a query for one backend, through both cache layers.

        Execution knobs resolve through :class:`ExecOptions`: the
        session's defaults, overlaid by the per-call ``exec_options``,
        overlaid by the legacy per-call aliases (``backend``,
        ``planner``, ``backend_options`` — deprecated but fully
        supported). The knobs the chosen backend consumes are
        canonicalised (sorted, recursively) into the plan-cache key, so
        logically identical settings share one cache entry.

        ``rewrite=False`` skips the schema rewriter entirely (the
        baseline variant of the paper's experiments); ``rewrite=True``
        additionally requires the instance to conform to the schema
        (:meth:`rewrite_sound`) — rewriting is unsound otherwise and
        the session falls back to the unrewritten pipeline.

        ``planner`` selects the pipeline: ``"greedy"`` is the classic
        linear one (rewrite when profitable per the rewriter's own
        heuristic, one greedy join order); ``"cost"`` enumerates
        candidate plans — original, full and partial rewrites,
        alternative join orders — and executes the cheapest under the
        backend's (possibly calibrated) cost profile. A ``backend`` of
        ``"auto"`` additionally lets the cost model pick the execution
        substrate per query.
        """
        query = self._as_query(query)
        if planner is not None or backend_options is not None:
            warn_legacy_exec_kwargs("GraphSession.prepare")
        resolved = self.exec_options.merged(exec_options).with_legacy(
            backend=backend, planner=planner
        )
        backend_name = resolved.backend or "ra"
        planner_mode = resolved.planner or self.planner
        effective_rewrite = rewrite and self.rewrite_sound()
        if rewrite and not effective_rewrite:
            self._rewrites_gated += 1
        options = (options or self.rewrite_options) if rewrite else None
        if backend_name == "auto":
            growth = resolved.fixpoint_growth
            if growth is None:
                growth = (backend_options or {}).get("fixpoint_growth")
            backend_name = self._choose_backend(
                query, effective_rewrite, options, growth
            )
            planner_mode = "cost"
        backend_impl = get_backend(backend_name)
        planner_mode = validate_planner(planner_mode)
        effective_options = resolved.backend_options_for(
            backend_impl.name, backend_options
        )
        if planner_mode == "cost":
            return self._governed(
                self._prepare_cost(
                    query, backend_impl, rewrite, effective_rewrite, options,
                    effective_options, max_bytes=resolved.max_bytes,
                ),
                resolved,
            )
        rewrite_result = None
        executed = query
        if effective_rewrite:
            rewrite_result = self.rewrite(query, options)
            executed = rewrite_result.query
        executed = _drop_unsatisfiable_disjuncts(executed)
        if executed.is_empty:
            return self._governed(
                PreparedQuery(
                    self, backend_impl, query, executed, rewrite_result, None,
                    self.schema_fingerprint, rewrite, options,
                    effective_options, rewrite_applied=effective_rewrite,
                ),
                resolved,
            )
        key = (
            backend_impl.name,
            str(query),
            effective_rewrite,
            self.schema_fingerprint,
            options,
            freeze_options(effective_options),
        )
        def prepare_plan():
            # Only pass options through when present, so pre-options
            # backends (third-party adapters with a two-argument
            # ``prepare``) keep working until actually handed options.
            if effective_options is None:
                return backend_impl.prepare(self, executed)
            return backend_impl.prepare(self, executed, effective_options)

        plan = self._plan_cache.get_or_create(key, prepare_plan)
        return self._governed(
            PreparedQuery(
                self, backend_impl, query, executed, rewrite_result, plan,
                self.schema_fingerprint, rewrite, options, effective_options,
                rewrite_applied=effective_rewrite,
            ),
            resolved,
        )

    @staticmethod
    def _governed(
        handle: PreparedQuery, resolved: ExecOptions
    ) -> PreparedQuery:
        """Stamp the resolved governor/degradation knobs onto a handle."""
        handle.max_rows = resolved.max_rows
        handle.max_bytes = resolved.max_bytes
        handle.fallback = bool(resolved.fallback)
        return handle

    #: Backends the auto-chooser ranks when no calibration is loaded.
    _AUTO_POOL = ("vec", "ra", "sqlite")

    def _choose_backend(
        self,
        query: UCQT,
        rewrite: bool,
        options: RewriteOptions | None,
        fixpoint_growth: float | None,
    ) -> str:
        """Pick the cheapest backend for one query (``backend="auto"``)."""
        return self._rank_backends(query, rewrite, options, fixpoint_growth)[0]

    def _rank_backends(
        self,
        query: UCQT,
        rewrite: bool,
        options: RewriteOptions | None,
        fixpoint_growth: float | None,
    ) -> tuple[str, ...]:
        """All eligible backends for one query, cheapest first.

        Ranks the query's candidate plans once per eligible backend and
        orders the backends by their winning plan's cost. With a loaded
        :class:`~repro.planner.CalibrationState` the eligible set is the
        fitted backends and costs compare in measured seconds (mutually
        comparable across backends); without one it falls back to the
        built-in profiles over the default pool — never a mix of the two
        scales. ``backend="auto"`` executes the head; the graceful
        degradation path walks the tail (cheapest surviving substrate
        next). The ranking is memoised in the plan cache.
        """
        key = (
            "planner:auto",
            str(query),
            rewrite,
            self.schema_fingerprint,
            options,
            fixpoint_growth,
        )

        def choose() -> tuple[str, ...]:
            state = self._calibration
            if state is not None and state.fitted_backends:
                pool = [
                    (name, state.profile_for(name))
                    for name in state.fitted_backends
                ]
            else:
                pool = [(name, None) for name in self._AUTO_POOL]
            estimator = Estimator(
                self.store, fixpoint_growth=fixpoint_growth
            )
            candidates = enumerate_plan_candidates(
                query, self._schema, self.store,
                rewrite=rewrite, options=options, estimator=estimator,
            )
            costs: list[tuple[float, str]] = []
            for name, profile in pool:
                choice = rank_candidates(
                    candidates, self.store, name,
                    estimator=estimator, profile=profile,
                )
                costs.append((choice.winner.cost, name))
            costs.sort()
            return tuple(name for _cost, name in costs)

        return self._plan_cache.get_or_create(key, choose)

    def _memory_decision(
        self,
        choice: "PlanChoice",
        backend_options: Mapping | None,
        max_bytes: int | None,
    ):
        """The out-of-core decision for one cost-planned vec query.

        Spill turns on when the planner's soft peak-memory estimate
        exceeds the configured ``spill_threshold_bytes`` (option or
        ``REPRO_SPILL_THRESHOLD_BYTES``) — or, with no threshold
        configured at all, when the estimate exceeds the **hard**
        :class:`~repro.graph.evaluator.ResourceBudget` ``max_bytes``
        ceiling, in which case the ceiling itself becomes the effective
        threshold stamped into the backend options (the plan then spills
        rather than aborts). Returns the (possibly augmented) options
        and the choice with the decision recorded.
        """
        opts = dict(backend_options or {})
        threshold = opts.get("spill_threshold_bytes")
        if threshold is None:
            threshold = default_spill_threshold()
        workers = opts.get("shard_workers")
        if workers is None:
            workers = default_shard_workers()
        spill = threshold is not None and choice.peak_bytes > threshold
        if (
            not spill
            and threshold is None
            and max_bytes is not None
            and choice.peak_bytes > max_bytes
        ):
            opts["spill_threshold_bytes"] = max_bytes
            spill = True
        if spill or workers > 1:
            if spill:
                self._spill_decisions += 1
            if workers > 1:
                self._shard_decisions += 1
            choice = choice.with_memory(spill=spill, shard_workers=workers)
        return (opts or None), choice

    def _prepare_cost(
        self,
        query: UCQT,
        backend_impl: Backend,
        rewrite: bool,
        effective_rewrite: bool,
        options: RewriteOptions | None,
        backend_options: Mapping | None,
        max_bytes: int | None = None,
    ) -> PreparedQuery:
        """The cost-based planning path of :meth:`prepare`.

        Enumerates candidates, ranks them under the backend's cost
        profile — the session's calibrated profile when one is loaded —
        and compiles the winner: via the backend's ``prepare_from_term``
        hook when it executes µ-RA terms directly (``ra``/``vec``), else
        by handing it the winning candidate's query text (``sqlite``/
        ``gdb``/``reference``, whose candidate space is the rewrite
        choice; the RA cost is their proxy). The ``(plan, choice)`` pair
        is cached like any greedy plan, under a planner-tagged key.
        """
        key = (
            "planner:cost",
            backend_impl.name,
            str(query),
            effective_rewrite,
            self.schema_fingerprint,
            options,
            freeze_options(backend_options),
            max_bytes,
        )

        def plan_candidates():
            growth = (backend_options or {}).get("fixpoint_growth")
            choice = plan_query(
                query,
                self._schema,
                self.store,
                backend_impl.name,
                rewrite=effective_rewrite,
                options=options,
                fixpoint_growth=growth,
                profile=self.calibration_profile(backend_impl.name),
            )
            winner = choice.winner.candidate
            if winner.term is None:
                return None, choice
            effective = backend_options
            if backend_impl.name == "vec":
                effective, choice = self._memory_decision(
                    choice, backend_options, max_bytes
                )
            from_term = getattr(backend_impl, "prepare_from_term", None)
            if from_term is not None:
                plan = from_term(self, winner.term, winner.query, effective)
            elif effective is None:
                plan = backend_impl.prepare(self, winner.query)
            else:
                plan = backend_impl.prepare(self, winner.query, effective)
            return plan, choice

        plan, choice = self._plan_cache.get_or_create(key, plan_candidates)
        self._last_peak_estimate = choice.peak_bytes
        winner = choice.winner.candidate
        return PreparedQuery(
            self, backend_impl, query, winner.query, winner.rewrite_result,
            plan, self.schema_fingerprint, rewrite, options, backend_options,
            planner="cost", choice=choice, plan_key=key,
            rewrite_applied=effective_rewrite,
        )

    def execute(
        self,
        query: UCQT | str,
        backend: str | None = None,
        *,
        timeout_seconds: float | None = None,
        rewrite: bool = True,
        options: RewriteOptions | None = None,
        backend_options: Mapping | None = None,
        planner: str | None = None,
        exec_options: ExecOptions | None = None,
    ) -> frozenset[tuple]:
        """Rewrite, plan (both cached) and run a query on one backend."""
        prepared = self.prepare(
            query, backend,
            rewrite=rewrite, options=options, backend_options=backend_options,
            planner=planner, exec_options=exec_options,
        )
        return prepared.execute(timeout_seconds)

    def execute_batch(
        self,
        queries: "Sequence[UCQT | str]",
        backend: str | None = None,
        *,
        timeout_seconds: float | None = None,
        rewrite: bool = True,
        options: RewriteOptions | None = None,
        backend_options: Mapping | None = None,
        planner: str | None = None,
        exec_options: ExecOptions | None = None,
    ) -> list[frozenset[tuple]]:
        """Execute a batch of queries, sharing work across the batch.

        Results come back in input order. Identical normalised queries
        are prepared and executed once; on the ``vec`` backend the whole
        batch additionally runs through one shared executor, so the
        dictionary encoding, base-relation scans and any compiled
        subprograms common to several queries (equal closed µ-RA
        subtrees, e.g. a shared transitive closure) are materialised
        exactly once for the batch. See :mod:`repro.serve` for the
        asyncio front door and richer per-batch statistics.
        """
        from repro.serve.batch import execute_batch

        outcome = execute_batch(
            self, queries, backend,
            timeout_seconds=timeout_seconds, rewrite=rewrite,
            options=options, backend_options=backend_options,
            planner=planner, exec_options=exec_options,
        )
        return list(outcome.results)

    def explain(
        self,
        query: UCQT | str,
        backend: str | None = None,
        *,
        rewrite: bool = True,
        options: RewriteOptions | None = None,
        backend_options: Mapping | None = None,
        planner: str | None = None,
        exec_options: ExecOptions | None = None,
    ) -> ExplainReport:
        """The plan the backend would execute, as a structured report.

        Returns an :class:`~repro.engine.report.ExplainReport` — its
        ``render()`` (and ``str()``) is the classic explain text, its
        ``to_dict()`` the JSON form the HTTP tier ships.
        """
        prepared = self.prepare(
            query, backend,
            rewrite=rewrite, options=options, backend_options=backend_options,
            planner=planner, exec_options=exec_options,
        )
        return prepared.explain()

    # -- graceful degradation ----------------------------------------------
    def _breaker(self, backend: str) -> CircuitBreaker:
        breaker = self._breakers.get(backend)
        if breaker is None:
            breaker = CircuitBreaker(self.breaker_config)
            self._breakers[backend] = breaker
        return breaker

    def _degradation_chain(self, prepared: PreparedQuery) -> list[str]:
        """Backends to try for one handle: primary, then cheapest next.

        The tail comes from the calibrated ranking when it can be
        computed (the same memoised ranking ``backend="auto"`` picks
        from), then the remaining fitted/default-pool backends, ending
        at the interpreters — ``ra`` and ``reference`` share no kernel
        machinery with ``vec``, so a vec-specific fault cannot follow
        the query down the whole chain.
        """
        chain = [prepared.backend.name]

        def extend(names) -> None:
            for name in names:
                if name not in chain:
                    chain.append(name)

        try:
            extend(
                self._rank_backends(
                    prepared.query,
                    prepared.rewrite_applied,
                    prepared.options,
                    None,
                )
            )
        except ReproError:
            pass  # unrankable query: fall through to the static order
        state = self._calibration
        if state is not None and state.fitted_backends:
            extend(state.fitted_backends)
        extend(self._AUTO_POOL)
        extend(("ra", "reference"))
        return chain

    def _fallback_handle(
        self, prepared: PreparedQuery, backend: str
    ) -> PreparedQuery | None:
        """Re-prepare one handle's query on a different substrate.

        ``None`` when the query cannot be prepared there (translation
        limits etc.) — the degradation loop then moves further down the
        chain. Backend-specific knobs are re-derived from the session's
        options; the governor caps carry over from the failing handle.
        """
        try:
            handle = self.prepare(
                prepared.query,
                rewrite=prepared.rewrite,
                options=prepared.options,
                exec_options=ExecOptions(
                    backend=backend, planner=prepared.planner
                ),
            )
        except ReproError:
            return None
        handle.max_rows = prepared.max_rows
        handle.max_bytes = prepared.max_bytes
        return handle

    def _execute_resilient(
        self,
        prepared: PreparedQuery,
        timeout_seconds: float | None = None,
    ) -> frozenset[tuple]:
        """Execute with retries down the backend chain.

        One wall-clock deadline spans every attempt (each retry sees
        only the remaining time; row/byte budgets are fresh per attempt
        — they cap one substrate's consumption, not the request's).
        Retryable failures step to the next backend after a bounded
        backoff and feed that backend's circuit breaker; an open breaker
        skips its backend outright. Non-retryable errors raise
        immediately. Success stamps ``retries``/``degraded``/
        ``breaker_opens`` onto the handle's ``last_execution_stats``.
        """
        policy = self.retry_policy
        deadline = (
            None
            if timeout_seconds is None
            else time.monotonic() + timeout_seconds
        )
        counters = self._resilience
        attempts = 0
        opens = 0
        last_error: ReproError | None = None
        tried_or_skipped: list[str] = []
        rows: frozenset[tuple] | None = None
        winner: PreparedQuery | None = None

        def attempt(
            handle: PreparedQuery, breaker: CircuitBreaker
        ) -> frozenset[tuple] | None:
            nonlocal attempts, opens, last_error
            remaining = (
                None if deadline is None else deadline - time.monotonic()
            )
            attempts += 1
            try:
                result = handle._execute_once(remaining)
            except ReproError as error:
                if not error.retryable:
                    raise
                last_error = error
                if breaker.record_failure():
                    opens += 1
                    counters["breaker_opens"] += 1
                return None
            breaker.record_success()
            return result

        # Fast path: the planned backend, healthy breaker, first try —
        # no chain is computed and nothing extra is allocated, so the
        # governed-but-healthy hot path stays at budget-check cost.
        primary = prepared.backend.name
        tried_or_skipped.append(primary)
        breaker = self._breaker(primary)
        if breaker.allow():
            rows = attempt(prepared, breaker)
            if rows is not None and opens == 0:
                return rows
            winner = prepared if rows is not None else None
        else:
            counters["breaker_skips"] += 1
        if rows is None:
            for backend_name in self._degradation_chain(prepared)[1:]:
                if attempts >= policy.max_attempts:
                    break
                breaker = self._breaker(backend_name)
                if not breaker.allow():
                    counters["breaker_skips"] += 1
                    tried_or_skipped.append(backend_name)
                    continue
                if attempts > 0:
                    delay = policy.backoff(attempts - 1)
                    if deadline is not None:
                        delay = min(
                            delay, max(deadline - time.monotonic(), 0.0)
                        )
                    if delay > 0:
                        time.sleep(delay)
                if deadline is not None and time.monotonic() >= deadline:
                    raise QueryTimeout(timeout_seconds or 0.0)
                handle = self._fallback_handle(prepared, backend_name)
                if handle is None:
                    continue
                tried_or_skipped.append(backend_name)
                rows = attempt(handle, breaker)
                if rows is not None:
                    winner = handle
                    break
        if rows is not None and winner is not None:
            degraded = winner is not prepared
            stats = winner.last_execution_stats
            if stats is None:
                stats = ExecutionStats(programs=1)
            stats.retries += attempts - 1
            stats.degraded += 1 if degraded else 0
            stats.breaker_opens += opens
            winner.last_execution_stats = stats
            prepared.last_execution_stats = stats
            counters["retries"] += attempts - 1
            counters["degraded"] += 1 if degraded else 0
            return rows
        if last_error is not None:
            raise last_error
        # Nothing was even attempted: every substrate vetoed (or
        # unpreparable). Tell the client when the first breaker
        # half-opens.
        horizons = [
            self._breakers[name].retry_after()
            for name in tried_or_skipped
            if name in self._breakers
            and self._breakers[name].state != "closed"
        ]
        raise BackendUnavailableError(
            tuple(dict.fromkeys(tried_or_skipped)) or tuple(chain),
            retry_after_seconds=min(horizons) if horizons else 1.0,
        )

    def resilience_stats(self) -> dict:
        """Degradation counters + per-backend breaker state (JSON-ready)."""
        return {
            **self._resilience,
            "fallback": bool(self.exec_options.fallback),
            "breakers": {
                name: breaker.snapshot()
                for name, breaker in sorted(self._breakers.items())
            },
        }

    # -- the result-set cache ----------------------------------------------
    @property
    def result_cache_enabled(self) -> bool:
        return self._result_cache.max_size > 0

    def _result_key(
        self, backend: Backend, plan: object | None, backend_options
    ) -> tuple | None:
        """The result-cache key for one prepared plan, or None.

        Only backends exposing a structural ``result_token`` participate.
        The store version is *not* part of the key — it lives on the
        cached :class:`~repro.engine.cache.CachedResult`, so a lookup
        after a write still finds the stale entry and
        :meth:`_lookup_result` can maintain it from the append delta.
        """
        if plan is None or not self.result_cache_enabled:
            return None
        token_of = getattr(backend, "result_token", None)
        if token_of is None:
            return None
        return result_cache_key(
            backend.name,
            token_of(plan),
            self.schema_fingerprint,
            backend_options,
        )

    def _lookup_result(
        self,
        prepared: "PreparedQuery",
        key: tuple,
        timeout_seconds: "float | EvalBudget | None" = None,
    ) -> frozenset | None:
        """Serve one result-cache lookup, maintaining stale entries.

        A fresh entry is a plain hit. A stale entry (the store moved on)
        is brought up to date by :meth:`_maintain_entry` when the write
        was append-only and the plan is maintainable — counted as a hit
        — otherwise evicted and counted as a miss.
        """
        cache = self._result_cache
        entry = cache.peek(key)
        if entry is None:
            cache.count_miss()
            return None
        try:
            fault_point("result_cache.load")
        except InjectedFault:
            # Containment: a faulted load degrades to a miss — the
            # query recomputes and re-stores; the entry is untouched.
            cache.count_miss()
            return None
        if entry.version == self.store.version:
            cache.count_hit(key)
            return entry.rows
        rows = self._maintain_entry(prepared, entry, timeout_seconds)
        if rows is not None:
            cache.count_hit(key)
            return rows
        cache.evict(key)
        self._maintenance.results_invalidated += 1
        cache.count_miss()
        return None

    def _maintain_entry(
        self,
        prepared: "PreparedQuery",
        entry: CachedResult,
        timeout_seconds: "float | EvalBudget | None",
    ) -> frozenset | None:
        """Bring one stale cache entry up to the current store version.

        Returns the maintained rows, or None when the entry cannot be
        maintained (maintenance disabled, barrier write, unknown read
        set with no seedable fixpoint state). Plans that read none of
        the changed relations are re-stamped without any evaluation.
        """
        if not self._incremental_active():
            return None
        try:
            fault_point("maintain.apply")
        except InjectedFault:
            # Containment: a faulted maintenance run degrades to the
            # invalidation path (evict + recompute) before touching the
            # entry — never a partially-maintained result.
            return None
        store = self.store
        deltas = store.delta_since(entry.version)
        if deltas is None:
            return None
        reads = _backends.plan_read_relations(prepared.plan)
        if reads is not None and not (set(reads) & set(deltas)):
            entry.version = store.version
            self._maintenance.results_maintained += 1
            return entry.rows
        plan = prepared.plan
        if not isinstance(plan, _backends.VecPlan):
            return None
        if not maintainable(plan.program, entry.fix_states):
            return None
        kernel = get_kernel(plan.kernel) if plan.kernel else default_kernel()
        if entry.kernel_name != getattr(kernel, "NAME", None):
            return None  # coded tables must not seed a different kernel
        outcome = maintain_program(
            plan.program,
            store,
            deltas,
            entry.fix_states,
            head=plan.head,
            kernel=kernel,
            budget=as_budget(timeout_seconds),
            prev_rows=entry.rows,
            prev_output=entry.output,
        )
        entry.rows = outcome.rows
        entry.version = store.version
        entry.fix_states = outcome.fix_states
        entry.output = outcome.output
        self._maintenance.merge(outcome.stats)
        self._maintenance.results_maintained += 1
        return outcome.rows

    def _store_result(
        self,
        key: tuple,
        rows: frozenset,
        version: int,
        capture: dict | None = None,
    ) -> None:
        """Cache ``rows`` computed at store ``version`` under ``key``.

        ``capture`` is the executor's fix-capture dict: fixpoint totals
        keyed by Fix term, plus the root output table and kernel name
        under their sentinel keys.
        """
        try:
            fault_point("result_cache.store")
        except InjectedFault:
            # Containment: a faulted store skips caching — the caller's
            # result is already computed and correct; nothing partial
            # enters the cache.
            return
        output = kernel_name = None
        if capture:
            kernel_name = capture.pop(CAPTURE_KERNEL, None)
            output = capture.pop(CAPTURE_OUTPUT, None)
        self._result_cache.put(
            key,
            CachedResult(rows, version, capture or None, output, kernel_name),
        )

    # -- adaptive planner feedback -----------------------------------------
    def _observe_execution(
        self,
        prepared: PreparedQuery,
        actual_rows: int,
        stats: "ExecutionStats | None" = None,
    ) -> None:
        """Close the planning loop after one cost-planned execution.

        Actual cardinalities flow into the per-store
        :class:`~repro.ra.stats.StoreStatistics` correction table —
        observed fixpoint growth corrects the closure-growth assumption,
        and the root estimated/actual pair is recorded per plan. When
        the error factor exceeds :attr:`replan_error_threshold`, the
        plan-cache entry is evicted so the next ``prepare`` re-plans
        against the corrected statistics.

        Eviction is bounded: when the *previous* recorded feedback for
        this plan already exceeded the threshold, re-planning has been
        tried and the available corrections did not change the estimate
        enough — the plan is kept and only the feedback updated, so a
        persistently misestimated plan costs one re-plan per store
        snapshot, not one per execution.
        """
        choice = prepared.choice
        if choice is None:
            return
        store_stats = store_statistics(self.store)
        self._planner_observations += 1
        if stats is not None:
            growth = stats.observed_fixpoint_growth
            if growth is not None:
                store_stats.observe_fixpoint_growth(growth)
        # Per-backend token: the same query may be planned to different
        # candidates (and estimates) on different backends.
        token = f"{prepared.backend.name}:{prepared.query}"
        previous = store_stats.feedback.get(token)
        error = store_stats.record_plan_feedback(
            token, choice.winner.rows, actual_rows
        )
        already_replanned = (
            previous is not None and previous[2] > self.replan_error_threshold
        )
        if (
            error > self.replan_error_threshold
            and not already_replanned
            and prepared.plan_key is not None
        ):
            if self._plan_cache.evict(prepared.plan_key):
                self._planner_replans += 1

    # -- calibration (telemetry → fit → exploit) ---------------------------
    def _incremental_active(self) -> bool:
        """Incremental maintenance, after the session-level toggle."""
        if self._incremental is False:
            return False
        return incremental_enabled()

    def _record_telemetry(
        self,
        prepared: PreparedQuery,
        row_count: int,
        stats: "ExecutionStats | None",
        seconds: float,
    ) -> None:
        """Append one execution's telemetry to the calibration log.

        Per-operator estimates come from the cost model's own
        cardinality walk over the executed term (ra/vec; black-box
        backends contribute totals-only records), the root estimate
        from the planner's winning candidate when cost-planned, else
        from the estimator directly.
        """
        choice = prepared.choice
        estimated_root = choice.winner.rows if choice is not None else None
        predicted = choice.winner.cost if choice is not None else None
        op_estimates = None
        term = getattr(prepared.plan, "term", None)
        if term is not None:
            estimator = Estimator(self.store)
            op_estimates = estimate_kind_rows(term, self.store, estimator)
            if estimated_root is None:
                estimated_root = estimator.rows(term)
        self.calibration_log.record_execution(
            backend=prepared.backend_name,
            workload=self.workload_tag,
            seconds=seconds,
            stats=stats,
            op_estimates=op_estimates,
            estimated_rows=estimated_root,
            actual_rows=row_count,
            predicted_cost=predicted,
        )

    def calibration_profile(self, backend: str) -> "CostProfile | None":
        """The fitted cost profile for ``backend`` (None: uncalibrated)."""
        if self._calibration is None:
            return None
        return self._calibration.profile_for(backend)

    @property
    def calibration(self) -> CalibrationState | None:
        return self._calibration

    def calibrate(
        self,
        persist_path: "str | pathlib.Path | None" = None,
        backends: "Sequence[str] | None" = None,
    ) -> CalibrationState:
        """Fit per-backend cost profiles from this session's telemetry.

        Least-squares fits each logged backend's
        :class:`~repro.planner.cost.CostProfile` (seconds per row —
        mutually comparable across backends, which is what lets
        ``backend="auto"`` pick a substrate per query). The fitted state
        becomes the session's active calibration, the plan cache is
        cleared so rankings recompute under the new weights, and
        ``persist_path`` optionally writes the state as JSON for a
        serving process to boot from
        (``GraphSession(..., calibration=path)``).
        """
        state = calibrate_from_log(self.calibration_log, backends=backends)
        self._calibration = state
        self._plan_cache.clear()
        if persist_path is not None:
            state.save(persist_path)
        return state

    def _explain_q_error(self, backend: str) -> dict | None:
        """Root-cardinality Q-error summary for explain (None: no data)."""
        summary = self.calibration_log.backend_summary(backend)
        if summary is None:
            return None
        summary = dict(summary)
        summary["calibrated"] = (
            self._calibration is not None
            and backend in self._calibration.fitted_backends
        )
        return summary

    @property
    def planner_stats(self) -> dict:
        """Counters of the adaptive planning loop (cost planner only)."""
        store_stats = store_statistics(self.store)
        state = self._calibration
        return {
            "mode": self.planner,
            "observations": self._planner_observations,
            "replans": self._planner_replans,
            "observed_fixpoint_growth": store_stats.observed_fixpoint_growth,
            "feedback_entries": len(store_stats.feedback),
            "rewrites_gated": self._rewrites_gated,
            "instance_conforming": (
                None if self._conformance is None else self._conformance[1]
            ),
            "resilience": self.resilience_stats(),
            "memory": {
                "spill_decisions": self._spill_decisions,
                "shard_decisions": self._shard_decisions,
                "last_peak_estimate_bytes": self._last_peak_estimate,
                "spilled_bytes": (
                    self._spill_manager.spilled_bytes
                    if self._spill_manager is not None
                    else 0
                ),
                "spill_ops": (
                    self._spill_manager.spill_ops
                    if self._spill_manager is not None
                    else 0
                ),
                "spill_reuses": (
                    self._spill_manager.spill_reuses
                    if self._spill_manager is not None
                    else 0
                ),
            },
            "calibration": {
                "records": len(self.calibration_log),
                "total_recorded": self.calibration_log.total_recorded,
                "fitted_backends": (
                    list(state.fitted_backends) if state is not None else []
                ),
                "q_error": self.calibration_log.summary(),
            },
        }

    # -- introspection -----------------------------------------------------
    def spill_manager(self, path: str | None = None) -> SpillManager:
        """The session's spill-directory owner, created on first use.

        One manager serves every out-of-core execution of the session,
        so named base-table spill files persist across executions at
        the same store version (and are invalidated by version moves).
        ``path`` roots the directory on first call; later calls return
        the existing manager regardless. Closed with the session.
        """
        if self._spill_manager is None or self._spill_manager.closed:
            self._spill_manager = SpillManager(
                path or self.exec_options.spill_path
            )
        return self._spill_manager

    @property
    def backends(self) -> tuple[str, ...]:
        return available_backends()

    @property
    def cache_stats(self) -> "dict[str, CacheStats | ExecutionStats]":
        self._maintenance.encoding_appends = (
            encoding_appends(self._store) if self._store is not None else 0
        )
        self._maintenance.tables_encoded = (
            tables_encoded(self._store) if self._store is not None else 0
        )
        return {
            "rewrite": self._rewrite_cache.stats(),
            "plan": self._plan_cache.stats(),
            "result": self._result_cache.stats(),
            "maintenance": self._maintenance,
        }

    def clear_caches(self) -> None:
        self._rewrite_cache.clear()
        self._plan_cache.clear()
        self._result_cache.clear()
        self._maintenance = ExecutionStats()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._sqlite is not None:
            self._sqlite.close()
            self._sqlite = None
        if self._spill_manager is not None:
            self._spill_manager.close()
            self._spill_manager = None

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSession({self.graph.name!r}, schema={self._schema.name!r}, "
            f"fingerprint={self.schema_fingerprint})"
        )

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _as_query(query: UCQT | str) -> UCQT:
        return parse_query(query) if isinstance(query, str) else query
