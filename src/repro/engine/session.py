"""``GraphSession`` — the single entry point over all execution substrates.

Construct a session once from a :class:`~repro.graph.model.PropertyGraph`
and a :class:`~repro.schema.model.GraphSchema`; it lazily builds and owns
every derived artefact (relational store, in-memory SQLite database,
pattern engine) and serves ``session.execute(query, backend=...)`` through
the uniform :class:`~repro.engine.protocol.Backend` protocol.

Two cache layers sit between parsing and execution, both keyed on
``(normalised query text, schema fingerprint, rewrite options)``:

* the **rewrite cache** memoises :func:`repro.core.rewriter.rewrite_query`
  (type inference + merging + redundancy removal is the expensive
  schema-dependent work), and
* the **plan cache** memoises each backend's compiled artefact — the
  optimised µ-RA term, the generated recursive SQL, or the compiled
  graph patterns.

A repeated query therefore pays only for execution; hit/miss counters are
exposed via :attr:`GraphSession.cache_stats`. The schema fingerprint makes
invalidation automatic: :meth:`GraphSession.update_schema` changes the
fingerprint, so every cached entry stops matching.

A third, **opt-in** layer removes execution too: constructing the
session with ``result_cache_size > 0`` caches whole result sets keyed on
``(backend, structural plan token, schema fingerprint, frozen backend
options)`` — repeated traffic over an unchanged store becomes an O(1)
lookup. The store version lives *inside* each entry
(:class:`~repro.engine.cache.CachedResult`): after an append-only write
a stale entry is **maintained** instead of recomputed — the cached
``vec`` fixpoint totals re-seed the semi-naive executor with a frontier
built from the store's append delta, and plans that read none of the
changed relations are simply re-stamped. Barrier writes (new tables,
replacements, deletions) or non-maintainable plans fall back to
eviction. ``REPRO_INCREMENTAL=0`` disables maintenance globally. The
layer is off by default because timed comparisons (the benchmark
harness) must measure execution, not cache hits; the serving entry
points (``repro batch`` / ``repro serve``) switch it on.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.core.rewriter import RewriteOptions, RewriteResult, rewrite_query
from repro.engine import backends as _backends  # noqa: F401 - registers adapters
from repro.engine.cache import (
    CachedResult,
    CacheStats,
    LruCache,
    freeze_options,
    result_cache_key,
)
from repro.engine.protocol import Backend, available_backends, get_backend
from repro.exec.dictionary import encoding_appends
from repro.exec.executor import CAPTURE_KERNEL, CAPTURE_OUTPUT, ExecutionStats
from repro.exec.kernels import default_kernel, get_kernel
from repro.exec.maintain import maintain_program, maintainable
from repro.gdb.engine import PatternEngine
from repro.graph.evaluator import EvalBudget
from repro.graph.model import UNLABELLED, PropertyGraph
from repro.planner import PlanChoice, plan_query, validate_planner
from repro.query.model import UCQT, drop_unsatisfiable_disjuncts
from repro.query.parser import parse_query
from repro.ra.stats import store_statistics
from repro.schema.model import GraphSchema
from repro.sql.sqlite_backend import SqliteBackend
from repro.storage.relational import RelationalStore, incremental_enabled


def schema_fingerprint(
    schema: GraphSchema, aliases: Mapping[str, tuple[str, ...]] | None = None
) -> str:
    """A stable digest of a schema's semantic content.

    Covers node labels with their property specifications, the schema
    edge triples, and any alias views layered on top — everything the
    rewriter and the translators can observe. The schema's display name
    is deliberately excluded.
    """
    digest = hashlib.sha256()
    for node in sorted(schema.nodes(), key=lambda n: n.label):
        digest.update(node.label.encode())
        for spec in node.properties:
            digest.update(f"|{spec.key}:{spec.data_type}".encode())
        digest.update(b"\n")
    for edge in sorted(
        schema.edges(),
        key=lambda e: (e.source_label, e.edge_label, e.target_label),
    ):
        digest.update(
            f"{edge.source_label}-[{edge.edge_label}]->{edge.target_label}\n".encode()
        )
    for alias in sorted(aliases or {}):
        digest.update(f"{alias}={','.join(aliases[alias])}\n".encode())
    return digest.hexdigest()[:16]


# The normalisation now lives in repro.query.model so the planner can
# apply it per candidate; the session keeps using it under this name.
_drop_unsatisfiable_disjuncts = drop_unsatisfiable_disjuncts


@dataclass
class PreparedQuery:
    """A query bound to one backend with its compiled plan.

    Executing a prepared query touches neither the rewriter nor the
    optimiser — it holds direct references to the cached artefacts.
    A ``plan`` of None means the schema proved the query unsatisfiable.

    The handle records the schema fingerprint it was prepared under;
    if the session's schema changes, the next ``execute``/``explain``
    transparently re-prepares against the new schema instead of running
    a stale plan over the rebuilt store.

    Under the cost-based planner (``planner="cost"``), ``choice`` holds
    the ranked candidate table (``explain`` renders it), executions on
    stats-capable backends populate ``last_execution_stats`` with actual
    cardinalities next to the winner's estimate, and every execution
    feeds the session's adaptive feedback loop.
    """

    session: "GraphSession"
    backend: Backend
    query: UCQT
    executed: UCQT
    rewrite_result: RewriteResult | None
    plan: object | None
    fingerprint: str
    rewrite: bool
    options: "RewriteOptions | None"
    backend_options: Mapping | None = None
    planner: str = "greedy"
    choice: PlanChoice | None = None
    plan_key: tuple | None = None
    last_execution_stats: ExecutionStats | None = None

    @property
    def backend_name(self) -> str:
        return self.backend.name

    @property
    def reverted(self) -> bool:
        """True when the executed query is the original (the rewriter
        kept it, or the cost planner chose it over the rewrites)."""
        return self.rewrite_result.reverted if self.rewrite_result else True

    def _refresh_if_stale(self) -> None:
        if self.fingerprint != self.session.schema_fingerprint:
            renewed = self.session.prepare(
                self.query,
                self.backend.name,
                rewrite=self.rewrite,
                options=self.options,
                backend_options=self.backend_options,
                planner=self.planner,
            )
            self.__dict__.update(renewed.__dict__)

    def result_cache_key(self) -> tuple | None:
        """This plan's result-set cache key (None: not cacheable).

        ``None`` when the session's result cache is disabled, the plan is
        empty, or the backend doesn't expose a structural plan token.
        """
        return self.session._result_key(
            self.backend, self.plan, self.backend_options
        )

    def execute(self, timeout_seconds: float | None = None) -> frozenset[tuple]:
        self._refresh_if_stale()
        if self.plan is None:
            return frozenset()
        key = self.result_cache_key()
        if key is not None:
            hit = self.session._lookup_result(self, key, timeout_seconds)
            if hit is not None:
                return hit
        version = self.session.store.version
        capture: dict | None = None
        if (
            key is not None
            and isinstance(self.plan, _backends.VecPlan)
            and incremental_enabled()
        ):
            capture = {}
        stats: ExecutionStats | None = None
        runner = getattr(self.backend, "execute_with_stats", None)
        if runner is not None and (self.choice is not None or capture is not None):
            if self.choice is not None:
                stats = ExecutionStats()
            if capture is not None:
                rows = runner(
                    self.session, self.plan, timeout_seconds, stats,
                    fix_capture=capture,
                )
            else:
                rows = runner(self.session, self.plan, timeout_seconds, stats)
        else:
            rows = self.backend.execute(
                self.session, self.plan, timeout_seconds
            )
        if self.choice is not None:
            if stats is None:
                stats = ExecutionStats(programs=1)
            stats.estimated_rows += self.choice.winner.rows
            stats.actual_rows += len(rows)
            self.last_execution_stats = stats
            self.session._observe_execution(self, len(rows), stats)
        if key is not None:
            self.session._store_result(key, rows, version, capture)
        return rows

    def explain(self) -> str:
        self._refresh_if_stale()
        if self.plan is None:
            text = "-- empty result: the schema proved this query unsatisfiable --"
            if self.choice is not None:
                text += f"\n\n{self.choice.render()}"
            return text
        text = self.backend.explain(self.session, self.plan)
        if self.choice is not None:
            text += f"\n\n{self.choice.render()}"
        if self.result_cache_key() is not None:
            stats = self.session._result_cache.stats()
            text += (
                f"\n\n-- result cache: {stats.hits} hit(s), "
                f"{stats.misses} miss(es), {stats.size} cached result set(s) --"
            )
            maintenance = self.session._maintenance
            if maintenance.results_maintained or maintenance.results_invalidated:
                text += (
                    f"\n-- incremental maintenance: "
                    f"{maintenance.results_maintained} maintained, "
                    f"{maintenance.results_invalidated} invalidated, "
                    f"{maintenance.delta_rows_applied} delta row(s) applied --"
                )
        return text


class GraphSession:
    """Unified engine façade over one property graph and its schema."""

    def __init__(
        self,
        graph: PropertyGraph,
        schema: GraphSchema,
        *,
        store: RelationalStore | None = None,
        aliases: Mapping[str, tuple[str, ...]] | None = None,
        rewrite_options: RewriteOptions | None = None,
        cache_size: int = 256,
        result_cache_size: int = 0,
        planner: str = "greedy",
        replan_error_threshold: float = 8.0,
    ):
        self._graph = graph
        self._schema = schema
        self._store = store
        # The store version the graph model reflects: store appends are
        # replayed onto the graph lazily (see the ``graph`` property),
        # so the graph-model engines keep agreeing with the relational
        # backends under writes.
        self._graph_version = store.version if store is not None else 0
        if store is not None:
            # An injected store brings its own alias views; any aliases
            # declared here are added on top (conflicts are API misuse).
            self._aliases: dict[str, tuple[str, ...]] = dict(store.aliases)
            for name, members in (aliases or {}).items():
                members = tuple(members)
                existing = self._aliases.get(name)
                if existing is None:
                    store.add_alias(name, members)
                    self._aliases[name] = members
                elif existing != members:
                    raise ValueError(
                        f"alias {name!r} declared as {members} but the "
                        f"injected store defines it as {existing}"
                    )
        else:
            self._aliases = {k: tuple(v) for k, v in (aliases or {}).items()}
        self.rewrite_options = rewrite_options or RewriteOptions()
        #: Default planning mode: ``"greedy"`` runs the classic linear
        #: pipeline; ``"cost"`` enumerates candidates and picks by cost.
        self.planner = validate_planner(planner)
        if replan_error_threshold < 1.0:
            raise ValueError(
                "replan_error_threshold is an error *factor* "
                f"(max/min >= 1), got {replan_error_threshold!r}"
            )
        #: Estimated-vs-actual error factor beyond which a cost-planned
        #: entry is evicted from the plan cache and planned again
        #: against the corrected statistics.
        self.replan_error_threshold = replan_error_threshold
        self._planner_replans = 0
        self._planner_observations = 0
        self._sqlite: SqliteBackend | None = None
        self._pattern_engine: PatternEngine | None = None
        self._fingerprint: str | None = None
        self._rewrite_cache = LruCache(cache_size)
        self._plan_cache = LruCache(cache_size)
        # Whole result sets, keyed on (backend, plan token, fingerprint,
        # frozen options); the store version lives inside each entry so
        # stale results can be incrementally maintained after appends.
        # Off by default: repeated timed executions must measure
        # execution — serving flows opt in.
        self._result_cache = LruCache(result_cache_size)
        #: Counters of the result-maintenance flow (maintained vs
        #: invalidated entries, delta rows applied, encoding appends).
        self._maintenance = ExecutionStats()

    # -- derived artefacts (built lazily, owned by the session) -----------
    @property
    def schema(self) -> GraphSchema:
        return self._schema

    @property
    def schema_fingerprint(self) -> str:
        if self._fingerprint is None:
            self._fingerprint = schema_fingerprint(self._schema, self._aliases)
        return self._fingerprint

    @property
    def graph(self) -> PropertyGraph:
        """The property graph, caught up with any store appends.

        The relational store is the write surface; the graph model is
        replayed from its append deltas on read so the ``gdb`` and
        ``reference`` engines answer over the same data as ``ra``/
        ``vec``/``sqlite``. Barrier writes (replacements, new tables)
        and disabled maintenance cannot be replayed — the graph then
        keeps its pre-write contents for those tables.
        """
        self._sync_graph()
        return self._graph

    def _sync_graph(self) -> None:
        store = self._store
        if store is None or store.version == self._graph_version:
            return
        deltas = store.delta_since(self._graph_version)
        self._graph_version = store.version
        if deltas is None:
            return
        graph = self._graph
        node_tables = store.node_tables
        for name in sorted(deltas):
            if name in store.aliases:
                continue  # alias views recompute from their members
            rows = deltas[name]
            if name in node_tables:
                columns = store.table(name).columns
                for row in rows:
                    node = row[0]
                    if (
                        graph.has_node(node)
                        and graph.node_label(node) not in (name, UNLABELLED)
                    ):
                        # Multi-label ids are relational-only; the graph
                        # model keeps the first label it saw.
                        continue
                    graph.add_node(node, name, dict(zip(columns[1:], row[1:])))
            else:
                for row in rows:
                    if len(row) != 2:
                        continue
                    source, target = row
                    for endpoint in (source, target):
                        if not graph.has_node(endpoint):
                            graph.add_node(endpoint, UNLABELLED)
                    graph.add_edge(source, name, target)

    @property
    def store(self) -> RelationalStore:
        if self._store is None:
            store = RelationalStore.from_graph(self._graph, self._schema)
            for alias in sorted(self._aliases):
                store.add_alias(alias, self._aliases[alias])
            self._store = store
            self._graph_version = store.version
        return self._store

    @property
    def sqlite(self) -> SqliteBackend:
        if self._sqlite is None:
            self._sqlite = SqliteBackend(self.store)
        else:
            self._sqlite.sync()
        return self._sqlite

    @property
    def pattern_engine(self) -> PatternEngine:
        self._sync_graph()  # the engine reads the graph live
        if self._pattern_engine is None:
            self._pattern_engine = PatternEngine(self._graph)
        return self._pattern_engine

    def snapshot_session(self, version: int) -> "GraphSession | None":
        """A session over this session's store *as of* ``version``.

        The serving tier's snapshot-isolated read path: a read admitted
        at store version ``v`` can execute after append-only writes
        moved the store on and still see exactly the rows of ``v`` —
        the store reconstructs the pinned view by subtracting its
        append delta (:meth:`~repro.storage.relational.RelationalStore.
        snapshot_at`) and this session wraps it for the relational
        backends (``ra``/``vec``; the graph-model engines read the live
        graph and are not snapshot-capable).

        Returns ``self`` when ``version`` is current, ``None`` when no
        append-only delta covers the interval (barrier write, truncated
        log, maintenance disabled) — callers then fall back to the live
        session. Snapshot sessions share nothing with the live caches
        (fresh rewrite/plan caches, no result cache): they exist for
        the rare read that straddled a write, not for the hot path.
        """
        snapshot = self.store.snapshot_at(version)
        if snapshot is None:
            return None
        if snapshot is self.store:
            return self
        return GraphSession(
            self._graph,
            self._schema,
            store=snapshot,
            rewrite_options=self.rewrite_options,
            result_cache_size=0,
            planner=self.planner,
        )

    def update_schema(self, schema: GraphSchema) -> None:
        """Swap the schema: derived artefacts rebuild lazily and the new
        fingerprint retires every cached rewrite and plan."""
        self._schema = schema
        self._fingerprint = None
        if self._sqlite is not None:
            self._sqlite.close()
        self._sqlite = None
        self._store = None

    # -- the pipeline, cached ----------------------------------------------
    def rewrite(
        self,
        query: UCQT | str,
        options: RewriteOptions | None = None,
    ) -> RewriteResult:
        """Schema-rewrite a query, memoised on (query, fingerprint, options)."""
        query = self._as_query(query)
        options = options or self.rewrite_options
        key = (str(query), self.schema_fingerprint, options)
        return self._rewrite_cache.get_or_create(
            key, lambda: rewrite_query(query, self._schema, options)
        )

    def prepare(
        self,
        query: UCQT | str,
        backend: str = "ra",
        *,
        rewrite: bool = True,
        options: RewriteOptions | None = None,
        backend_options: Mapping | None = None,
        planner: str | None = None,
    ) -> PreparedQuery:
        """Compile a query for one backend, through both cache layers.

        ``rewrite=False`` skips the schema rewriter entirely (the
        baseline variant of the paper's experiments). ``backend_options``
        carries backend-specific knobs (e.g. ``{"kernel": "python"}`` for
        ``vec``); the mapping is canonicalised (sorted, recursively) into
        the plan-cache key, so logically identical option dicts share one
        cache entry regardless of insertion order.

        ``planner`` overrides the session default: ``"greedy"`` is the
        classic linear pipeline (rewrite when profitable per the
        rewriter's own heuristic, one greedy join order); ``"cost"``
        enumerates candidate plans — original, full and partial
        rewrites, alternative join orders — and executes the cheapest
        under the backend's cost profile.
        """
        query = self._as_query(query)
        backend_impl = get_backend(backend)
        planner_mode = validate_planner(planner or self.planner)
        options = (options or self.rewrite_options) if rewrite else None
        if planner_mode == "cost":
            return self._prepare_cost(
                query, backend_impl, rewrite, options, backend_options
            )
        rewrite_result = None
        executed = query
        if rewrite:
            rewrite_result = self.rewrite(query, options)
            executed = rewrite_result.query
        executed = _drop_unsatisfiable_disjuncts(executed)
        if executed.is_empty:
            return PreparedQuery(
                self, backend_impl, query, executed, rewrite_result, None,
                self.schema_fingerprint, rewrite, options, backend_options,
            )
        key = (
            backend_impl.name,
            str(query),
            rewrite,
            self.schema_fingerprint,
            options,
            freeze_options(backend_options),
        )
        def prepare_plan():
            # Only pass options through when present, so pre-options
            # backends (third-party adapters with a two-argument
            # ``prepare``) keep working until actually handed options.
            if backend_options is None:
                return backend_impl.prepare(self, executed)
            return backend_impl.prepare(self, executed, backend_options)

        plan = self._plan_cache.get_or_create(key, prepare_plan)
        return PreparedQuery(
            self, backend_impl, query, executed, rewrite_result, plan,
            self.schema_fingerprint, rewrite, options, backend_options,
        )

    def _prepare_cost(
        self,
        query: UCQT,
        backend_impl: Backend,
        rewrite: bool,
        options: RewriteOptions | None,
        backend_options: Mapping | None,
    ) -> PreparedQuery:
        """The cost-based planning path of :meth:`prepare`.

        Enumerates candidates, ranks them under the backend's cost
        profile and compiles the winner — via the backend's
        ``prepare_from_term`` hook when it executes µ-RA terms directly
        (``ra``/``vec``), else by handing it the winning candidate's
        query text (``sqlite``/``gdb``/``reference``, whose candidate
        space is the rewrite choice; the RA cost is their proxy). The
        ``(plan, choice)`` pair is cached like any greedy plan, under a
        planner-tagged key.
        """
        key = (
            "planner:cost",
            backend_impl.name,
            str(query),
            rewrite,
            self.schema_fingerprint,
            options,
            freeze_options(backend_options),
        )

        def plan_candidates():
            growth = (backend_options or {}).get("fixpoint_growth")
            choice = plan_query(
                query,
                self._schema,
                self.store,
                backend_impl.name,
                rewrite=rewrite,
                options=options,
                fixpoint_growth=growth,
            )
            winner = choice.winner.candidate
            if winner.term is None:
                return None, choice
            from_term = getattr(backend_impl, "prepare_from_term", None)
            if from_term is not None:
                plan = from_term(self, winner.term, winner.query, backend_options)
            elif backend_options is None:
                plan = backend_impl.prepare(self, winner.query)
            else:
                plan = backend_impl.prepare(self, winner.query, backend_options)
            return plan, choice

        plan, choice = self._plan_cache.get_or_create(key, plan_candidates)
        winner = choice.winner.candidate
        return PreparedQuery(
            self, backend_impl, query, winner.query, winner.rewrite_result,
            plan, self.schema_fingerprint, rewrite, options, backend_options,
            planner="cost", choice=choice, plan_key=key,
        )

    def execute(
        self,
        query: UCQT | str,
        backend: str = "ra",
        *,
        timeout_seconds: float | None = None,
        rewrite: bool = True,
        options: RewriteOptions | None = None,
        backend_options: Mapping | None = None,
        planner: str | None = None,
    ) -> frozenset[tuple]:
        """Rewrite, plan (both cached) and run a query on one backend."""
        prepared = self.prepare(
            query, backend,
            rewrite=rewrite, options=options, backend_options=backend_options,
            planner=planner,
        )
        return prepared.execute(timeout_seconds)

    def execute_batch(
        self,
        queries: "Sequence[UCQT | str]",
        backend: str = "vec",
        *,
        timeout_seconds: float | None = None,
        rewrite: bool = True,
        options: RewriteOptions | None = None,
        backend_options: Mapping | None = None,
        planner: str | None = None,
    ) -> list[frozenset[tuple]]:
        """Execute a batch of queries, sharing work across the batch.

        Results come back in input order. Identical normalised queries
        are prepared and executed once; on the ``vec`` backend the whole
        batch additionally runs through one shared executor, so the
        dictionary encoding, base-relation scans and any compiled
        subprograms common to several queries (equal closed µ-RA
        subtrees, e.g. a shared transitive closure) are materialised
        exactly once for the batch. See :mod:`repro.serve` for the
        asyncio front door and richer per-batch statistics.
        """
        from repro.serve.batch import execute_batch

        outcome = execute_batch(
            self, queries, backend,
            timeout_seconds=timeout_seconds, rewrite=rewrite,
            options=options, backend_options=backend_options,
            planner=planner,
        )
        return list(outcome.results)

    def explain(
        self,
        query: UCQT | str,
        backend: str = "ra",
        *,
        rewrite: bool = True,
        options: RewriteOptions | None = None,
        backend_options: Mapping | None = None,
        planner: str | None = None,
    ) -> str:
        """Render the plan the backend would execute for this query."""
        prepared = self.prepare(
            query, backend,
            rewrite=rewrite, options=options, backend_options=backend_options,
            planner=planner,
        )
        return prepared.explain()

    # -- the result-set cache ----------------------------------------------
    @property
    def result_cache_enabled(self) -> bool:
        return self._result_cache.max_size > 0

    def _result_key(
        self, backend: Backend, plan: object | None, backend_options
    ) -> tuple | None:
        """The result-cache key for one prepared plan, or None.

        Only backends exposing a structural ``result_token`` participate.
        The store version is *not* part of the key — it lives on the
        cached :class:`~repro.engine.cache.CachedResult`, so a lookup
        after a write still finds the stale entry and
        :meth:`_lookup_result` can maintain it from the append delta.
        """
        if plan is None or not self.result_cache_enabled:
            return None
        token_of = getattr(backend, "result_token", None)
        if token_of is None:
            return None
        return result_cache_key(
            backend.name,
            token_of(plan),
            self.schema_fingerprint,
            backend_options,
        )

    def _lookup_result(
        self,
        prepared: "PreparedQuery",
        key: tuple,
        timeout_seconds: float | None = None,
    ) -> frozenset | None:
        """Serve one result-cache lookup, maintaining stale entries.

        A fresh entry is a plain hit. A stale entry (the store moved on)
        is brought up to date by :meth:`_maintain_entry` when the write
        was append-only and the plan is maintainable — counted as a hit
        — otherwise evicted and counted as a miss.
        """
        cache = self._result_cache
        entry = cache.peek(key)
        if entry is None:
            cache.count_miss()
            return None
        if entry.version == self.store.version:
            cache.count_hit(key)
            return entry.rows
        rows = self._maintain_entry(prepared, entry, timeout_seconds)
        if rows is not None:
            cache.count_hit(key)
            return rows
        cache.evict(key)
        self._maintenance.results_invalidated += 1
        cache.count_miss()
        return None

    def _maintain_entry(
        self,
        prepared: "PreparedQuery",
        entry: CachedResult,
        timeout_seconds: float | None,
    ) -> frozenset | None:
        """Bring one stale cache entry up to the current store version.

        Returns the maintained rows, or None when the entry cannot be
        maintained (maintenance disabled, barrier write, unknown read
        set with no seedable fixpoint state). Plans that read none of
        the changed relations are re-stamped without any evaluation.
        """
        if not incremental_enabled():
            return None
        store = self.store
        deltas = store.delta_since(entry.version)
        if deltas is None:
            return None
        reads = _backends.plan_read_relations(prepared.plan)
        if reads is not None and not (set(reads) & set(deltas)):
            entry.version = store.version
            self._maintenance.results_maintained += 1
            return entry.rows
        plan = prepared.plan
        if not isinstance(plan, _backends.VecPlan):
            return None
        if not maintainable(plan.program, entry.fix_states):
            return None
        kernel = get_kernel(plan.kernel) if plan.kernel else default_kernel()
        if entry.kernel_name != getattr(kernel, "NAME", None):
            return None  # coded tables must not seed a different kernel
        outcome = maintain_program(
            plan.program,
            store,
            deltas,
            entry.fix_states,
            head=plan.head,
            kernel=kernel,
            budget=EvalBudget(timeout_seconds),
            prev_rows=entry.rows,
            prev_output=entry.output,
        )
        entry.rows = outcome.rows
        entry.version = store.version
        entry.fix_states = outcome.fix_states
        entry.output = outcome.output
        self._maintenance.merge(outcome.stats)
        self._maintenance.results_maintained += 1
        return outcome.rows

    def _store_result(
        self,
        key: tuple,
        rows: frozenset,
        version: int,
        capture: dict | None = None,
    ) -> None:
        """Cache ``rows`` computed at store ``version`` under ``key``.

        ``capture`` is the executor's fix-capture dict: fixpoint totals
        keyed by Fix term, plus the root output table and kernel name
        under their sentinel keys.
        """
        output = kernel_name = None
        if capture:
            kernel_name = capture.pop(CAPTURE_KERNEL, None)
            output = capture.pop(CAPTURE_OUTPUT, None)
        self._result_cache.put(
            key,
            CachedResult(rows, version, capture or None, output, kernel_name),
        )

    # -- adaptive planner feedback -----------------------------------------
    def _observe_execution(
        self,
        prepared: PreparedQuery,
        actual_rows: int,
        stats: "ExecutionStats | None" = None,
    ) -> None:
        """Close the planning loop after one cost-planned execution.

        Actual cardinalities flow into the per-store
        :class:`~repro.ra.stats.StoreStatistics` correction table —
        observed fixpoint growth corrects the closure-growth assumption,
        and the root estimated/actual pair is recorded per plan. When
        the error factor exceeds :attr:`replan_error_threshold`, the
        plan-cache entry is evicted so the next ``prepare`` re-plans
        against the corrected statistics.

        Eviction is bounded: when the *previous* recorded feedback for
        this plan already exceeded the threshold, re-planning has been
        tried and the available corrections did not change the estimate
        enough — the plan is kept and only the feedback updated, so a
        persistently misestimated plan costs one re-plan per store
        snapshot, not one per execution.
        """
        choice = prepared.choice
        if choice is None:
            return
        store_stats = store_statistics(self.store)
        self._planner_observations += 1
        if stats is not None:
            growth = stats.observed_fixpoint_growth
            if growth is not None:
                store_stats.observe_fixpoint_growth(growth)
        # Per-backend token: the same query may be planned to different
        # candidates (and estimates) on different backends.
        token = f"{prepared.backend.name}:{prepared.query}"
        previous = store_stats.feedback.get(token)
        error = store_stats.record_plan_feedback(
            token, choice.winner.rows, actual_rows
        )
        already_replanned = (
            previous is not None and previous[2] > self.replan_error_threshold
        )
        if (
            error > self.replan_error_threshold
            and not already_replanned
            and prepared.plan_key is not None
        ):
            if self._plan_cache.evict(prepared.plan_key):
                self._planner_replans += 1

    @property
    def planner_stats(self) -> dict:
        """Counters of the adaptive planning loop (cost planner only)."""
        store_stats = store_statistics(self.store)
        return {
            "mode": self.planner,
            "observations": self._planner_observations,
            "replans": self._planner_replans,
            "observed_fixpoint_growth": store_stats.observed_fixpoint_growth,
            "feedback_entries": len(store_stats.feedback),
        }

    # -- introspection -----------------------------------------------------
    @property
    def backends(self) -> tuple[str, ...]:
        return available_backends()

    @property
    def cache_stats(self) -> "dict[str, CacheStats | ExecutionStats]":
        self._maintenance.encoding_appends = (
            encoding_appends(self._store) if self._store is not None else 0
        )
        return {
            "rewrite": self._rewrite_cache.stats(),
            "plan": self._plan_cache.stats(),
            "result": self._result_cache.stats(),
            "maintenance": self._maintenance,
        }

    def clear_caches(self) -> None:
        self._rewrite_cache.clear()
        self._plan_cache.clear()
        self._result_cache.clear()
        self._maintenance = ExecutionStats()

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._sqlite is not None:
            self._sqlite.close()
            self._sqlite = None

    def __enter__(self) -> "GraphSession":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSession({self.graph.name!r}, schema={self._schema.name!r}, "
            f"fingerprint={self.schema_fingerprint})"
        )

    # -- helpers -----------------------------------------------------------
    @staticmethod
    def _as_query(query: UCQT | str) -> UCQT:
        return parse_query(query) if isinstance(query, str) else query
