"""Circuit breakers and retry policy for graceful backend degradation.

When a backend fails with a *retryable* error
(:attr:`~repro.errors.ReproError.retryable` — kernel faults, injected
faults, per-substrate resource exhaustion), the session retries the same
query down the calibrated backend chain: cheapest surviving substrate
next, bounded backoff between attempts, one shared wall-clock deadline
across the whole sequence. A per-backend :class:`CircuitBreaker`
remembers consecutive failures so a misbehaving substrate is skipped
outright instead of burning every request's budget rediscovering it;
after a cool-down the breaker *half-opens* and lets exactly one probe
through — success closes it, failure re-opens it for another cool-down.

The breaker is the classic three-state machine:

* ``closed`` — healthy; failures count toward ``failure_threshold``;
* ``open`` — vetoing all requests until ``cooldown_seconds`` elapse;
* ``half_open`` — cool-down over; one probe allowed, its outcome decides.

Breakers live per ``(session, backend)`` — and the serving tier holds
one session per tenant, so they are per ``(tenant, backend)`` exactly as
tenancy isolation requires. State is surfaced in ``planner_stats``,
``explain`` and ``/metrics``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass


@dataclass(frozen=True)
class BreakerConfig:
    """Trip threshold and cool-down for one :class:`CircuitBreaker`."""

    failure_threshold: int = 5
    cooldown_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_seconds < 0:
            raise ValueError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )


@dataclass(frozen=True)
class RetryPolicy:
    """Attempt bound and backoff schedule for the degradation loop.

    ``max_attempts`` counts *executions* (first try included).
    ``backoff(i)`` is the sleep before attempt ``i`` (0-based first
    retry): ``backoff_seconds * multiplier**i`` capped at
    ``max_backoff_seconds``. Defaults keep the whole schedule well under
    typical request deadlines — the deadline, not the backoff, is the
    real bound.
    """

    max_attempts: int = 3
    backoff_seconds: float = 0.01
    multiplier: float = 2.0
    max_backoff_seconds: float = 0.25

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {self.backoff_seconds}"
            )
        if self.multiplier < 1:
            raise ValueError(f"multiplier must be >= 1, got {self.multiplier}")
        if self.max_backoff_seconds < 0:
            raise ValueError(
                "max_backoff_seconds must be >= 0, "
                f"got {self.max_backoff_seconds}"
            )

    def backoff(self, retry_index: int) -> float:
        return min(
            self.backoff_seconds * self.multiplier ** max(retry_index, 0),
            self.max_backoff_seconds,
        )


class CircuitBreaker:
    """Three-state (closed / open / half-open) failure latch.

    The clock is injectable so tests drive state transitions without
    sleeping. Not thread-safe by itself — the session serialises access
    under its own lock.
    """

    def __init__(self, config: BreakerConfig | None = None, clock=time.monotonic):
        self.config = config or BreakerConfig()
        self._clock = clock
        self.consecutive_failures = 0
        self.opens = 0
        self._opened_at: float | None = None
        self._probing = False

    @property
    def state(self) -> str:
        if self._opened_at is None:
            return "closed"
        if self._clock() - self._opened_at >= self.config.cooldown_seconds:
            return "half_open"
        return "open"

    def allow(self) -> bool:
        """Whether a request may try this backend right now.

        In ``half_open``, only the first caller gets the probe slot;
        concurrent requests keep being vetoed until the probe reports.
        """
        state = self.state
        if state == "closed":
            return True
        if state == "half_open" and not self._probing:
            self._probing = True
            return True
        return False

    def record_success(self) -> None:
        self.consecutive_failures = 0
        self._opened_at = None
        self._probing = False

    def record_failure(self) -> bool:
        """Count a failure; True when this call newly opened the breaker."""
        was_open = self._opened_at is not None
        self.consecutive_failures += 1
        self._probing = False
        if was_open:
            # A failed half-open probe re-opens for another cool-down
            # (not a *new* open for the counters).
            self._opened_at = self._clock()
            return False
        if self.consecutive_failures >= self.config.failure_threshold:
            self._opened_at = self._clock()
            self.opens += 1
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until this breaker half-opens (0 when not open)."""
        if self._opened_at is None:
            return 0.0
        remaining = self.config.cooldown_seconds - (self._clock() - self._opened_at)
        return max(remaining, 0.0)

    def snapshot(self) -> dict:
        """JSON-ready state for planner_stats / explain / metrics."""
        return {
            "state": self.state,
            "consecutive_failures": self.consecutive_failures,
            "opens": self.opens,
        }
