"""Columnar kernel selection.

A *kernel* is a module implementing the batch primitives the executor
needs over tables of integer-code columns:

======================  ======================================================
``NAME``                kernel identifier (``"numpy"`` / ``"python"``)
``RELEASES_GIL``        True when large ops drop the GIL (morsel tasks can
                        actually run in parallel threads)
``from_columns(c, n)``  build a table from lists of column codes
``from_rows(r, w)``     build a table from row tuples (tests, fixpoint glue)
``to_rows(t)``          materialise row tuples
``nrows(t)``            row count
``width(t)``            column count
``empty(w)``            the empty table of ``w`` columns
``select_columns``      gather/permute columns by position
``slice_rows``          the ``[start, stop)`` row morsel of a table
``distinct``            drop duplicate rows
``select_eq``           keep rows where two columns hold equal codes
``concat``              stack two same-width tables
``concat_many``         stack many same-width tables in one pass
``hash_partition``      split rows so equal rows share a partition
``join``                natural (hash/sort) join on encoded key columns
``join_build``          index a join's build side once (None: key unpackable)
``join_probe``          probe one morsel against a prepared build side
``empty_state()``       fresh seen-row state for fixpoint difference
``difference``          rows not yet in the state; returns (delta, state)
======================  ======================================================

:mod:`repro.exec.kernels_numpy` vectorizes these over ``numpy`` arrays;
:mod:`repro.exec.kernels_python` is a dependency-free columnar fallback so
the ``vec`` backend works on a bare CPython install. Both produce
identical row sets — a property the test suite checks directly.
"""

from __future__ import annotations

from repro.exec import kernels_python

try:  # pragma: no cover - exercised via whichever kernel is active
    from repro.exec import kernels_numpy
except ImportError:  # pragma: no cover - numpy genuinely absent
    kernels_numpy = None  # type: ignore[assignment]

_DEFAULT = kernels_numpy if kernels_numpy is not None else kernels_python


def default_kernel():
    """The fastest available kernel module (numpy when importable)."""
    return _DEFAULT


def available_kernels() -> tuple[str, ...]:
    names = [kernels_python.NAME]
    if kernels_numpy is not None:
        names.insert(0, kernels_numpy.NAME)
    return tuple(names)


def get_kernel(name: str):
    """Resolve a kernel module by name."""
    if name == kernels_python.NAME:
        return kernels_python
    if kernels_numpy is not None and name == kernels_numpy.NAME:
        return kernels_numpy
    raise ValueError(
        f"unknown kernel {name!r}; available: {available_kernels()}"
    )
