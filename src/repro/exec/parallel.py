"""Morsel-driven parallel execution of the columnar kernels.

The unit of parallelism is the *morsel*: a fixed-size run of rows of one
encoded table. :class:`MorselKernel` wraps a kernel module behind the
same surface the executor already drives and fans the heavy operators
out over a shared :class:`~concurrent.futures.ThreadPoolExecutor`:

* **hash join** — the build side is indexed once
  (``kernel.join_build``), then every probe-side morsel probes it as its
  own task (``kernel.join_probe``) and the per-morsel partials merge
  with one ``concat_many``. In a fixpoint round the delta frontier is
  usually the build side, so each round re-indexes only the frontier and
  probes the (large, static) edge relation in parallel;
* **dedup / union distinct** — rows are hash-partitioned so equal rows
  land in the same partition, each partition dedups as its own task, and
  the merge is concat-only (the parallel-safe union: no cross-partition
  duplicates can exist);
* **selection** — ``select_eq`` filters row morsels independently.

Everything else (column gathers, renames, the serial fixpoint
state-difference) delegates to the wrapped kernel unchanged, so the
executor needs no parallel-specific logic: it just runs with a
``MorselKernel`` instead of a bare kernel module.

Threads only help when the kernel drops the GIL on large arrays
(``kernel.RELEASES_GIL``, true for numpy). For the pure-Python kernel
the wrapper keeps the exact same surface but never spawns a pool —
parallel and sequential configurations stay result- and API-identical
on every kernel, which the property tests check directly.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor

#: Rows per morsel when the caller doesn't pin one. Small enough that a
#: four-worker pool gets several tasks per operator on the benchmark
#: workloads, large enough that one numpy call still amortises well.
DEFAULT_MORSEL_SIZE = 4096

#: Floor of the adaptive morsel size: below this, per-task dispatch
#: overhead dominates whatever a worker could overlap.
MIN_MORSEL_SIZE = 256

#: Environment override for the default worker count (used by the CI
#: matrix leg that runs the whole suite morsel-parallel).
PARALLELISM_ENV = "REPRO_VEC_PARALLELISM"


def default_parallelism() -> int:
    """The worker count implied by ``REPRO_VEC_PARALLELISM`` (min 1)."""
    raw = os.environ.get(PARALLELISM_ENV, "")
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(value, 1)


def morsel_ranges(nrows: int, morsel_size: int) -> list[tuple[int, int]]:
    """Split ``nrows`` rows into ``[start, stop)`` runs of ``morsel_size``.

    An empty relation yields no morsels; a relation smaller than one
    morsel yields exactly one covering the whole table.
    """
    if morsel_size < 1:
        raise ValueError(f"morsel_size must be >= 1, got {morsel_size}")
    if nrows <= 0:
        return []
    return [
        (start, min(start + morsel_size, nrows))
        for start in range(0, nrows, morsel_size)
    ]


def adaptive_morsel_size(
    nrows: int, parallelism: int, configured: int = DEFAULT_MORSEL_SIZE
) -> int:
    """The effective rows-per-morsel for one operator's input size.

    Targets four morsels per worker (``rows / (4 × workers)``) so tiny
    inputs stop dispatching near-per-row tasks and huge inputs stop
    under-splitting, clamped to ``[MIN_MORSEL_SIZE, configured]``. Used
    only when the caller didn't pin an explicit ``morsel_size`` — the
    explicit option remains an exact override.
    """
    derived = nrows // max(4 * parallelism, 1)
    return max(MIN_MORSEL_SIZE, min(derived, configured))


class MorselKernel:
    """A kernel module wrapped for morsel-parallel execution.

    Exposes the full kernel surface (unknown attributes delegate to the
    wrapped module, including ``NAME`` — encoded-table caches therefore
    stay shared with sequential runs). The pool is created lazily on the
    first operator that actually fans out and must be released with
    :meth:`close` (or by using the instance as a context manager).

    ``parallel_ops`` counts operators dispatched as morsel fan-outs and
    ``morsels_dispatched`` the tasks submitted; both feed
    :class:`~repro.exec.executor.ExecutionStats`.

    ``budget`` (an :class:`~repro.graph.evaluator.EvalBudget`) is checked
    once before every fan-out and once per morsel task, so a deadline or
    resource cap interrupts a long parallel operator between morsels
    instead of only after the whole operator returns. Budget methods are
    thread-safe enough for this use: tick batching may lose a few counts
    under races, but ``check_now`` reads one immutable deadline.
    """

    def __init__(
        self,
        base,
        parallelism: int,
        morsel_size: int | None = None,
        budget=None,
    ):
        if parallelism < 1:
            raise ValueError(f"parallelism must be >= 1, got {parallelism}")
        #: An explicit morsel size is an exact override; ``None`` turns
        #: on the adaptive per-operator size (rows / (4 × workers),
        #: clamped) — see :func:`adaptive_morsel_size`.
        self.adaptive = morsel_size is None
        morsel_size = (
            DEFAULT_MORSEL_SIZE if morsel_size is None else morsel_size
        )
        if morsel_size < 1:
            raise ValueError(f"morsel_size must be >= 1, got {morsel_size}")
        self.base = base
        self.parallelism = parallelism
        self.morsel_size = morsel_size
        self.budget = budget
        self.parallel_ops = 0
        self.morsels_dispatched = 0
        self._pool: ThreadPoolExecutor | None = None

    def __getattr__(self, name):
        return getattr(self.base, name)

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def __enter__(self) -> "MorselKernel":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- dispatch helpers --------------------------------------------------
    @property
    def effective_parallelism(self) -> int:
        """Workers that can actually overlap (1 under a GIL-bound kernel)."""
        if not getattr(self.base, "RELEASES_GIL", False):
            return 1
        return self.parallelism

    def _morsel_size_for(self, nrows: int) -> int:
        """The rows-per-morsel this operator should run with."""
        if not self.adaptive:
            return self.morsel_size
        return adaptive_morsel_size(nrows, self.parallelism, self.morsel_size)

    def _fans_out(self, nrows: int) -> bool:
        # A fan-out needs at least two morsels to pay for the dispatch.
        return (
            self.effective_parallelism > 1
            and nrows > self._morsel_size_for(nrows)
        )

    def _checked(self, task):
        budget = self.budget
        if budget is not None:
            budget.check_now()
        return task()

    def _run(self, tasks):
        if self.budget is not None:
            self.budget.check_now()
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.parallelism,
                thread_name_prefix="repro-morsel",
            )
        self.parallel_ops += 1
        self.morsels_dispatched += len(tasks)
        return list(self._pool.map(self._checked, tasks))

    # -- morsel-parallel operators -----------------------------------------
    def join(self, left, right, left_key, right_key, layout, domain):
        base = self.base
        # Index the smaller side once; probe with the larger, morselized.
        if base.nrows(left) <= base.nrows(right):
            build, probe = left, right
            build_key, probe_key = left_key, right_key
            build_side = 0
        else:
            build, probe = right, left
            build_key, probe_key = right_key, left_key
            build_side = 1
        if not self._fans_out(base.nrows(probe)):
            return base.join(left, right, left_key, right_key, layout, domain)
        handle = base.join_build(build, build_key, domain)
        if handle is None:  # key too wide to pack: one sequential join
            return base.join(left, right, left_key, right_key, layout, domain)
        partials = self._run(
            [
                lambda s=start, e=stop: base.join_probe(
                    handle,
                    base.slice_rows(probe, s, e),
                    probe_key,
                    layout,
                    build_side,
                    domain,
                )
                for start, stop in morsel_ranges(
                    base.nrows(probe),
                    self._morsel_size_for(base.nrows(probe)),
                )
            ]
        )
        return base.concat_many(partials, len(layout))

    def distinct(self, table, domain):
        base = self.base
        if not self._fans_out(base.nrows(table)) or base.width(table) == 0:
            return base.distinct(table, domain)
        parts = base.hash_partition(table, self.parallelism, domain)
        if len(parts) == 1:  # row too wide to partition by packed key
            return base.distinct(table, domain)
        partials = self._run(
            [lambda p=part: base.distinct(p, domain) for part in parts]
        )
        return base.concat_many(partials, base.width(table))

    def select_eq(self, table, index_a, index_b):
        base = self.base
        if not self._fans_out(base.nrows(table)):
            return base.select_eq(table, index_a, index_b)
        partials = self._run(
            [
                lambda s=start, e=stop: base.select_eq(
                    base.slice_rows(table, s, e), index_a, index_b
                )
                for start, stop in morsel_ranges(
                    base.nrows(table),
                    self._morsel_size_for(base.nrows(table)),
                )
            ]
        )
        return base.concat_many(partials, base.width(table))
