"""Pure-Python columnar kernels (no third-party dependencies).

Operates column-at-a-time over plain lists of integer codes. Slower than
the numpy kernels but still batch-oriented (tight comprehensions over
integer columns, dict-of-int hash joins), and always available — the
``vec`` backend degrades to this module when numpy is not installed.
"""

from __future__ import annotations

from typing import Iterable


class PyTable:
    """Columns of integer codes over an explicit row count."""

    __slots__ = ("cols", "n")

    def __init__(self, cols: list[list[int]], n: int):
        self.cols = cols
        self.n = n


NAME = "python"


def from_columns(codes: list[list[int]], nrows: int) -> PyTable:
    return PyTable([list(column) for column in codes], nrows)


def from_rows(rows: Iterable[tuple[int, ...]], width: int) -> PyTable:
    rows = list(rows)
    if not rows:
        return empty(width)
    return PyTable([list(column) for column in zip(*rows)], len(rows))


def to_rows(table: PyTable) -> list[tuple[int, ...]]:
    if not table.cols:
        return [()] * table.n
    return list(zip(*table.cols))


def nrows(table: PyTable) -> int:
    return table.n


def width(table: PyTable) -> int:
    return len(table.cols)


def empty(width: int) -> PyTable:
    return PyTable([[] for _ in range(width)], 0)


def select_columns(table: PyTable, indices: list[int]) -> PyTable:
    return PyTable([table.cols[i] for i in indices], table.n)


def distinct(table: PyTable, domain: int) -> PyTable:
    unique = set(to_rows(table))
    if len(unique) == table.n:
        return table
    return from_rows(unique, len(table.cols))


def select_eq(table: PyTable, index_a: int, index_b: int) -> PyTable:
    column_a = table.cols[index_a]
    column_b = table.cols[index_b]
    keep = [i for i, (a, b) in enumerate(zip(column_a, column_b)) if a == b]
    cols = [[column[i] for i in keep] for column in table.cols]
    return PyTable(cols, len(keep))


def concat(left: PyTable, right: PyTable) -> PyTable:
    cols = [a + b for a, b in zip(left.cols, right.cols)]
    return PyTable(cols, left.n + right.n)


def join(
    left: PyTable,
    right: PyTable,
    left_key: list[int],
    right_key: list[int],
    layout: list[tuple[int, int]],
    domain: int,
) -> PyTable:
    """Natural join; ``layout`` maps output columns to (side, column)."""
    # Build the hash table on the smaller side.
    if left.n <= right.n:
        build, probe = left, right
        build_key, probe_key = left_key, right_key
        build_side = 0
    else:
        build, probe = right, left
        build_key, probe_key = right_key, left_key
        build_side = 1

    build_rows = to_rows(select_columns(build, build_key))
    table: dict[tuple, list[int]] = {}
    for position, key in enumerate(build_rows):
        table.setdefault(key, []).append(position)

    probe_rows = to_rows(select_columns(probe, probe_key))
    probe_idx: list[int] = []
    build_idx: list[int] = []
    for position, key in enumerate(probe_rows):
        matches = table.get(key)
        if matches:
            probe_idx.extend([position] * len(matches))
            build_idx.extend(matches)

    out_cols: list[list[int]] = []
    for side, column_index in layout:
        if side == build_side:
            source, idx = build.cols[column_index], build_idx
        else:
            source, idx = probe.cols[column_index], probe_idx
        out_cols.append([source[i] for i in idx])
    return PyTable(out_cols, len(probe_idx))


def empty_state():
    return set()


def difference(table: PyTable, state: set, domain: int):
    """Rows of ``table`` not yet in ``state``; updates and returns state."""
    fresh = [row for row in set(to_rows(table)) if row not in state]
    state.update(fresh)
    return from_rows(fresh, len(table.cols)), state
