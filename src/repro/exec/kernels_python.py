"""Pure-Python columnar kernels (no third-party dependencies).

Operates column-at-a-time over plain lists of integer codes. Slower than
the numpy kernels but still batch-oriented (tight comprehensions over
integer columns, dict-of-int hash joins), and always available — the
``vec`` backend degrades to this module when numpy is not installed.
"""

from __future__ import annotations

from typing import Iterable


class PyTable:
    """Columns of integer codes over an explicit row count."""

    __slots__ = ("cols", "n")

    def __init__(self, cols: list[list[int]], n: int):
        self.cols = cols
        self.n = n


NAME = "python"

#: Pure-Python loops hold the GIL throughout, so morsel tasks cannot
#: overlap — the parallel executor falls back to sequential execution.
RELEASES_GIL = False

#: Columns are plain lists copied at construction, so a disk-backed
#: buffer buys nothing — the spill path degrades to a no-op here.
SUPPORTS_MEMMAP = False


def from_columns(codes: list[list[int]], nrows: int) -> PyTable:
    return PyTable([list(column) for column in codes], nrows)


def from_rows(rows: Iterable[tuple[int, ...]], width: int) -> PyTable:
    rows = list(rows)
    if not rows:
        return empty(width)
    return PyTable([list(column) for column in zip(*rows)], len(rows))


def to_rows(table: PyTable) -> list[tuple[int, ...]]:
    if not table.cols:
        return [()] * table.n
    return list(zip(*table.cols))


def nrows(table: PyTable) -> int:
    return table.n


def width(table: PyTable) -> int:
    return len(table.cols)


def empty(width: int) -> PyTable:
    return PyTable([[] for _ in range(width)], 0)


def select_columns(table: PyTable, indices: list[int]) -> PyTable:
    return PyTable([table.cols[i] for i in indices], table.n)


def slice_rows(table: PyTable, start: int, stop: int) -> PyTable:
    """The morsel ``[start, stop)`` of ``table``."""
    stop = min(stop, table.n)
    start = max(start, 0)
    n = max(stop - start, 0)
    return PyTable([column[start:stop] for column in table.cols], n)


def concat_many(tables: list[PyTable], width: int) -> PyTable:
    """Stack same-width tables in one pass per column."""
    tables = [table for table in tables if table.n]
    if not tables:
        return empty(width)
    if len(tables) == 1:
        return tables[0]
    cols: list[list[int]] = []
    for i in range(width):
        merged: list[int] = []
        for table in tables:
            merged.extend(table.cols[i])
        cols.append(merged)
    return PyTable(cols, sum(table.n for table in tables))


def hash_partition(table: PyTable, nparts: int, domain: int) -> list[PyTable]:
    """Split rows so equal rows land in the same partition."""
    if nparts <= 1 or table.n == 0 or not table.cols:
        return [table]
    buckets: list[list[tuple[int, ...]]] = [[] for _ in range(nparts)]
    for row in to_rows(table):
        buckets[hash(row) % nparts].append(row)
    return [from_rows(bucket, len(table.cols)) for bucket in buckets]


def distinct(table: PyTable, domain: int) -> PyTable:
    unique = set(to_rows(table))
    if len(unique) == table.n:
        return table
    return from_rows(unique, len(table.cols))


def select_eq(table: PyTable, index_a: int, index_b: int) -> PyTable:
    column_a = table.cols[index_a]
    column_b = table.cols[index_b]
    keep = [i for i, (a, b) in enumerate(zip(column_a, column_b)) if a == b]
    cols = [[column[i] for i in keep] for column in table.cols]
    return PyTable(cols, len(keep))


def concat(left: PyTable, right: PyTable) -> PyTable:
    cols = [a + b for a, b in zip(left.cols, right.cols)]
    return PyTable(cols, left.n + right.n)


class JoinBuild:
    """The shared build side of a hash join: hashed once, probed by any
    number of probe morsels."""

    __slots__ = ("table", "positions")

    def __init__(self, table: PyTable, positions: dict):
        self.table = table
        self.positions = positions


def join_build(build: PyTable, key: list[int], domain: int) -> JoinBuild:
    """Hash the build side's key columns once."""
    positions: dict[tuple, list[int]] = {}
    for position, row_key in enumerate(to_rows(select_columns(build, key))):
        positions.setdefault(row_key, []).append(position)
    return JoinBuild(build, positions)


def join_probe(
    handle: JoinBuild,
    probe: PyTable,
    probe_key: list[int],
    layout: list[tuple[int, int]],
    build_side: int,
    domain: int,
) -> PyTable:
    """Probe one morsel against a prepared build side."""
    build = handle.table
    positions = handle.positions
    probe_idx: list[int] = []
    build_idx: list[int] = []
    for position, row_key in enumerate(
        to_rows(select_columns(probe, probe_key))
    ):
        matches = positions.get(row_key)
        if matches:
            probe_idx.extend([position] * len(matches))
            build_idx.extend(matches)

    out_cols: list[list[int]] = []
    for side, column_index in layout:
        if side == build_side:
            source, idx = build.cols[column_index], build_idx
        else:
            source, idx = probe.cols[column_index], probe_idx
        out_cols.append([source[i] for i in idx])
    return PyTable(out_cols, len(probe_idx))


def join(
    left: PyTable,
    right: PyTable,
    left_key: list[int],
    right_key: list[int],
    layout: list[tuple[int, int]],
    domain: int,
) -> PyTable:
    """Natural join; ``layout`` maps output columns to (side, column)."""
    # Build the hash table on the smaller side.
    if left.n <= right.n:
        build, probe = left, right
        build_key, probe_key = left_key, right_key
        build_side = 0
    else:
        build, probe = right, left
        build_key, probe_key = right_key, left_key
        build_side = 1

    handle = join_build(build, build_key, domain)
    return join_probe(handle, probe, probe_key, layout, build_side, domain)


def empty_state():
    return set()


def difference(table: PyTable, state: set, domain: int):
    """Rows of ``table`` not yet in ``state``; updates and returns state."""
    fresh = [row for row in set(to_rows(table)) if row not in state]
    state.update(fresh)
    return from_rows(fresh, len(table.cols)), state
