"""Vectorized columnar execution engine (the ``vec`` backend).

The µ-RA interpreter in :mod:`repro.ra.evaluate` processes one tuple at a
time over Python sets of heterogeneous values. This subsystem executes the
*same* optimised :class:`~repro.ra.terms.RaTerm` plans batch-at-a-time
over columns of dense integer codes:

* :mod:`repro.exec.dictionary` — dictionary-encodes every node id and
  constant into a dense integer once per store snapshot; the encoding is
  *append-only*, so append-only store writes fold in as O(delta) code
  appends and only barrier writes rebuild it,
* :mod:`repro.exec.kernels` — the columnar kernel primitives (gather,
  distinct, hash join on encoded key columns, set difference), with a
  NumPy implementation and a pure-Python fallback behind one surface,
* :mod:`repro.exec.compile` — compiles an ``RaTerm`` into a DAG of
  physical columnar operators with all column arithmetic resolved to
  positional indices at compile time,
* :mod:`repro.exec.executor` — runs a compiled program, including
  semi-naive fixpoint iteration over delta frontiers,
* :mod:`repro.exec.maintain` — incrementally maintains cached fixpoint
  results after append-only store writes by re-seeding the semi-naive
  iteration with a delta-derived frontier,
* :mod:`repro.exec.parallel` — morsel-driven parallel execution: the
  heavy kernel operators fan out over fixed-size row morsels on a
  shared thread pool (:class:`~repro.exec.parallel.MorselKernel`).

The :class:`~repro.engine.backends.VecBackend` registered in the engine
layer wires the pieces behind the standard ``prepare``/``execute``/
``explain`` protocol.
"""

from repro.exec.compile import CompiledProgram, compile_term, render_program
from repro.exec.dictionary import (
    StoreEncoding,
    ValueDictionary,
    encoding_appends,
    encoding_for,
)
from repro.exec.executor import (
    ExecutionStats,
    execute_batch_programs,
    execute_program,
)
from repro.exec.maintain import (
    MaintenanceOutcome,
    maintain_program,
    maintainable,
)
from repro.exec.kernels import available_kernels, default_kernel, get_kernel
from repro.exec.parallel import (
    DEFAULT_MORSEL_SIZE,
    MorselKernel,
    default_parallelism,
    morsel_ranges,
)

__all__ = [
    "CompiledProgram",
    "DEFAULT_MORSEL_SIZE",
    "ExecutionStats",
    "MaintenanceOutcome",
    "MorselKernel",
    "StoreEncoding",
    "ValueDictionary",
    "available_kernels",
    "compile_term",
    "default_kernel",
    "default_parallelism",
    "encoding_appends",
    "encoding_for",
    "execute_batch_programs",
    "execute_program",
    "get_kernel",
    "maintain_program",
    "maintainable",
    "morsel_ranges",
    "render_program",
]
