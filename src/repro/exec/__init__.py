"""Vectorized columnar execution engine (the ``vec`` backend).

The µ-RA interpreter in :mod:`repro.ra.evaluate` processes one tuple at a
time over Python sets of heterogeneous values. This subsystem executes the
*same* optimised :class:`~repro.ra.terms.RaTerm` plans batch-at-a-time
over columns of dense integer codes:

* :mod:`repro.exec.dictionary` — dictionary-encodes every node id and
  constant into a dense integer once per store snapshot; the encoding is
  *append-only*, so append-only store writes fold in as O(delta) code
  appends and only barrier writes rebuild it,
* :mod:`repro.exec.kernels` — the columnar kernel primitives (gather,
  distinct, hash join on encoded key columns, set difference), with a
  NumPy implementation and a pure-Python fallback behind one surface,
* :mod:`repro.exec.compile` — compiles an ``RaTerm`` into a DAG of
  physical columnar operators with all column arithmetic resolved to
  positional indices at compile time,
* :mod:`repro.exec.executor` — runs a compiled program, including
  semi-naive fixpoint iteration over delta frontiers,
* :mod:`repro.exec.maintain` — incrementally maintains cached fixpoint
  results after append-only store writes by re-seeding the semi-naive
  iteration with a delta-derived frontier,
* :mod:`repro.exec.parallel` — morsel-driven parallel execution: the
  heavy kernel operators fan out over fixed-size row morsels on a
  shared thread pool (:class:`~repro.exec.parallel.MorselKernel`),
* :mod:`repro.exec.spill` — out-of-core execution: encoded tables and
  oversized intermediates are rewritten as flat int64 files and mapped
  back as ``np.memmap`` views (:class:`~repro.exec.spill.SpillManager`),
* :mod:`repro.exec.shard` — multi-process sharded morsels: the same
  fan-outs over a persistent worker-process pool, morsels shipped
  zero-pickle via spill files — real parallelism for the GIL-bound
  pure-Python kernel (:class:`~repro.exec.shard.ProcessMorselKernel`).

The :class:`~repro.engine.backends.VecBackend` registered in the engine
layer wires the pieces behind the standard ``prepare``/``execute``/
``explain`` protocol.
"""

from repro.exec.compile import CompiledProgram, compile_term, render_program
from repro.exec.dictionary import (
    StoreEncoding,
    ValueDictionary,
    encoding_appends,
    encoding_for,
    tables_encoded,
)
from repro.exec.executor import (
    ExecutionStats,
    execute_batch_programs,
    execute_program,
)
from repro.exec.maintain import (
    MaintenanceOutcome,
    maintain_program,
    maintainable,
)
from repro.exec.kernels import available_kernels, default_kernel, get_kernel
from repro.exec.parallel import (
    DEFAULT_MORSEL_SIZE,
    MIN_MORSEL_SIZE,
    MorselKernel,
    adaptive_morsel_size,
    default_parallelism,
    morsel_ranges,
)
from repro.exec.shard import ProcessMorselKernel, shutdown_pool
from repro.exec.spill import (
    SpillManager,
    default_shard_workers,
    default_spill_path,
    default_spill_threshold,
    is_spilled,
    spill_supported,
)

__all__ = [
    "CompiledProgram",
    "DEFAULT_MORSEL_SIZE",
    "ExecutionStats",
    "MIN_MORSEL_SIZE",
    "MaintenanceOutcome",
    "MorselKernel",
    "ProcessMorselKernel",
    "SpillManager",
    "StoreEncoding",
    "ValueDictionary",
    "adaptive_morsel_size",
    "available_kernels",
    "compile_term",
    "default_kernel",
    "default_parallelism",
    "default_shard_workers",
    "default_spill_path",
    "default_spill_threshold",
    "encoding_appends",
    "encoding_for",
    "execute_batch_programs",
    "execute_program",
    "get_kernel",
    "is_spilled",
    "maintain_program",
    "maintainable",
    "morsel_ranges",
    "render_program",
    "shutdown_pool",
    "spill_supported",
    "tables_encoded",
]
