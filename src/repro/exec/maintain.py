"""Incremental maintenance of cached fixpoint results under appends.

A cached ``vec`` result is a materialised least fixpoint. When the store
takes an *append-only* write (:meth:`RelationalStore.delta_since`
returns the added rows), the cached result ``R₀`` is a sound starting
point for the **new** fixpoint: every µ-RA operator is monotone, so
``R₀ = lfp(F_old) ⊆ lfp(F_new)``, and Kleene iteration restarted from
any sound point converges to exactly ``lfp(F_new)``.

:func:`maintain_program` therefore re-seeds the semi-naive executor:
each closed fixpoint whose previous total was captured
(:class:`~repro.engine.cache.CachedResult` stores the kernel-native
tables of integer codes — codes survive appends because the dictionary
encoding is append-only) restarts with ``total = R₀`` and a *round-0
frontier* derived from the delta instead of from scratch. When the
previous decoded rows and coded output table are supplied too, only the
rows the write actually added are decoded — the whole maintenance run
is then O(delta + vectorized membership), never O(result) Python work.

The frontier must cover ``F_new(R₀) \\ R₀``. Outside nested fixpoints
every operator is multilinear in its scan occurrences, so the frontier
is the union of per-occurrence *delta variants*: for each occurrence of
a changed scan, clone the operator path from the fixpoint arm down to
that occurrence and replace only it with an :class:`DeltaScanOp` over
the appended rows — every other scan reads the full new table and the
recursion variable reads ``R₀``. The ``S = ∅`` monomial (all occurrences
old) is ``⊆ R₀`` because ``R₀`` is a fixpoint of the old operator, and
every mixed monomial is dominated by the variant of one of its changed
occurrences — so variants ∪ ``R₀`` cover the full frontier at O(delta)
evaluation cost. Arms whose subtree contains a changed scan *inside a
nested fixpoint* are not multilinear; those fall back to one full
evaluation of the arm against the new tables (still exact — just one
non-delta round).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from repro.exec.compile import (
    CompiledProgram,
    FixOp,
    JoinOp,
    PhysOp,
    ProjectOp,
    RenameOp,
    ScanOp,
    SelectEqOp,
    UnionOp,
    VarOp,
)
from repro.exec.dictionary import encoding_for
from repro.exec.executor import ExecutionStats, _NO_BUDGET, _Runner
from repro.graph.evaluator import EvalBudget
from repro.storage.relational import RelationalStore


@dataclass
class DeltaScanOp(PhysOp):
    """Scan only the rows appended to a table since the cached version."""

    table: str
    indices: list[int] | None
    dedup: bool

    def label(self) -> str:  # pragma: no cover - debug rendering only
        return f"AppendScan Δ{self.table}"


@dataclass
class _TableOp(PhysOp):
    """A leaf yielding an already-materialised kernel table — stands in
    for a maintained fixpoint's *delta* in root-scope variants."""

    value: object

    def label(self) -> str:  # pragma: no cover - debug rendering only
        return "FixpointΔ"


#: Child attribute names per operator kind, for cloning one operator
#: path per changed-scan occurrence. ``FixOp`` is deliberately absent:
#: variants never reach through a nested fixpoint (not multilinear).
_CHILD_FIELDS: dict[type, tuple[str, ...]] = {
    ProjectOp: ("child",),
    RenameOp: ("child",),
    SelectEqOp: ("child",),
    JoinOp: ("left", "right"),
    UnionOp: ("left", "right"),
}

#: Every operator the maintenance runner understands. All are monotone,
#: which the seeded-restart argument requires; an unknown operator kind
#: added later makes ``maintainable`` refuse rather than corrupt.
_SUPPORTED_OPS = (
    ScanOp,
    VarOp,
    ProjectOp,
    RenameOp,
    SelectEqOp,
    JoinOp,
    UnionOp,
    FixOp,
)


def maintainable(program: CompiledProgram, fix_states: dict | None) -> bool:
    """Can ``program``'s cached result be maintained from ``fix_states``?

    Requires every operator to be a known monotone kind and at least one
    closed fixpoint with a captured previous total — without a seeded
    fixpoint, maintenance would be an ordinary recomputation and the
    caller should just invalidate.
    """
    if not fix_states:
        return False
    ops = program.root.walk()
    if not all(isinstance(op, _SUPPORTED_OPS) for op in ops):
        return False
    return any(
        isinstance(op, FixOp) and op.closed and op.source in fix_states
        for op in ops
    )


@dataclass
class MaintenanceOutcome:
    """Result of one incremental maintenance run.

    ``fix_states`` and ``output`` are kernel-native coded tables, ready
    to seed the *next* maintenance round without any conversion.
    """

    rows: frozenset
    fix_states: dict
    stats: ExecutionStats
    output: object = None


def maintain_program(
    program: CompiledProgram,
    store: RelationalStore,
    deltas: dict[str, frozenset],
    fix_states: dict,
    head: tuple[str, ...] | None = None,
    kernel=None,
    budget: EvalBudget | None = None,
    prev_rows: frozenset | None = None,
    prev_output=None,
) -> MaintenanceOutcome:
    """Bring a cached result of ``program`` up to ``store``'s version.

    ``deltas`` is the store's append delta since the cached version and
    ``fix_states`` the captured ``(total, state, domain)`` fixpoint
    triples (kernel-native, produced by the *same* kernel that runs
    here — see :data:`~repro.exec.executor.CAPTURE_KERNEL`). When
    ``prev_rows``/``prev_output`` carry the entry's decoded rows and
    coded output table, only the newly-derived rows are decoded — every
    operator is monotone, so the new output is a superset of the old.
    Returns the maintained rows plus refreshed fixpoint states for the
    cache entry. Exactness relies on monotonicity only, so the outcome
    always equals a cold recomputation.
    """
    if kernel is None:
        from repro.exec.kernels import default_kernel

        kernel = default_kernel()
    encoding = encoding_for(store)  # folds the delta into the snapshot
    runner = _MaintainRunner(
        program, encoding, kernel, budget or _NO_BUDGET, deltas, fix_states
    )
    columns = program.columns
    head_indices = (
        [columns.index(column) for column in head]
        if head is not None and head != columns
        else None
    )
    decode_row = encoding.dictionary.decode_row
    incremental = prev_rows is not None and prev_output is not None
    delta_out = runner.root_delta(program) if incremental else None
    if delta_out is not None:
        # Root-scope delta propagation: only the new monomials were
        # evaluated. ``delta_out`` is O(write delta), so the new rows
        # are filtered against the previous *decoded* set row by row —
        # no O(result) membership state is ever rebuilt.
        if head_indices is not None:
            delta_out = kernel.select_columns(delta_out, head_indices)
        added_coded: list[tuple] = []
        added_rows: set = set()
        for coded in kernel.to_rows(delta_out):
            decoded = decode_row(coded)
            if decoded not in prev_rows and decoded not in added_rows:
                added_rows.add(decoded)
                added_coded.append(coded)
        if added_rows:
            rows = prev_rows | added_rows
            table = kernel.concat(
                prev_output,
                kernel.from_rows(added_coded, len(head or columns)),
            )
        else:
            rows = prev_rows
            table = prev_output
    else:
        table = runner.run(program)
        if head_indices is not None:
            table = kernel.select_columns(table, head_indices)
        if incremental:
            _, seen = kernel.difference(
                prev_output, kernel.empty_state(), runner.domain
            )
            added, _ = kernel.difference(table, seen, runner.domain)
            rows = prev_rows | frozenset(
                decode_row(row) for row in kernel.to_rows(added)
            )
        else:
            rows = frozenset(
                decode_row(row) for row in kernel.to_rows(table)
            )
    new_states: dict = {}
    for op in program.root.walk():
        if (
            isinstance(op, FixOp)
            and op.closed
            and op.source is not None
            and id(op) in runner._memo
        ):
            new_states[op.source] = (
                runner._memo[id(op)],
                runner.fix_final_states.get(id(op)),
                runner.domain,
            )
    runner.stats.delta_rows_applied += runner.delta_rows
    return MaintenanceOutcome(
        rows=rows, fix_states=new_states, stats=runner.stats, output=table
    )


class _MaintainRunner(_Runner):
    """A :class:`_Runner` whose fixpoints restart from cached totals."""

    def __init__(self, program, encoding, kernel, budget, deltas, fix_states):
        # The superclass encodes every scanned table in full first, so
        # all delta values are interned and the packing domain is frozen
        # before the delta rows are re-encoded below.
        super().__init__([program], encoding, kernel, budget)
        self._fix_states = fix_states
        self._delta_tables: dict[str, object] = {}
        #: id(FixOp) -> rows its maintained total gained over the seed,
        #: recorded as each seeded fixpoint evaluates — the "changed
        #: leaf" inputs of root-scope delta propagation.
        self.fix_deltas: dict[int, object] = {}
        self.delta_rows = 0
        encode = encoding.dictionary.encode
        for name in program.scan_tables:
            rows = deltas.get(name)
            if not rows:
                continue
            width = len(encoding.table(name).columns)
            coded = [tuple(encode(value) for value in row) for row in rows]
            self._delta_tables[name] = kernel.from_rows(coded, width)
            self.delta_rows += len(coded)

    def _eval_uncached(self, op: PhysOp, env: dict):
        if isinstance(op, DeltaScanOp):
            kernel = self.kernel
            table = self._delta_tables[op.table]
            if op.indices is not None:
                table = kernel.select_columns(table, op.indices)
                if op.dedup:
                    table = kernel.distinct(table, self.domain)
            return table
        if isinstance(op, _TableOp):
            return op.value
        return super()._eval_uncached(op, env)

    # -- root-scope delta propagation --------------------------------------
    def root_delta(self, program):
        """The rows ``program``'s output gained, or None when the root
        cannot be maintained incrementally.

        The operators above the fixpoints are multilinear in their
        changed leaves — changed scans and maintained fixpoints — so the
        gained rows are covered by one variant per changed-leaf
        occurrence, each evaluated at O(leaf delta). Requires every
        changed root-scope fixpoint to be seeded (its delta is known);
        otherwise the caller falls back to one full root evaluation.
        """
        root = program.root
        if not self._root_scope_ok(root):
            return None
        kernel = self.kernel
        # Materialise (and memoise) the root-scope fixpoints first: the
        # variants reference their totals, and the seeded evaluations
        # record the deltas the variants substitute.
        for op in self._root_scope_fixops(root):
            self._eval(op, {})
        parts = [
            self._eval(variant, {})
            for variant in self._root_variants(root)
        ]
        out = kernel.empty(len(program.columns))
        for part in parts:
            out = kernel.concat(out, part)
        return out

    def _root_scope_ok(self, tree: PhysOp) -> bool:
        if isinstance(tree, FixOp):
            if not self._subtree_changed(tree):
                return True
            return (
                tree.closed
                and tree.source is not None
                and self._fix_states.get(tree.source) is not None
            )
        return all(
            self._root_scope_ok(child) for child in tree.children()
        )

    def _root_scope_fixops(self, tree: PhysOp):
        if isinstance(tree, FixOp):
            yield tree
            return
        for child in tree.children():
            yield from self._root_scope_fixops(child)

    def _root_variants(self, tree: PhysOp) -> list[PhysOp]:
        """One cloned root path per changed-leaf occurrence, where a
        leaf is a changed scan or a maintained (changed) fixpoint."""
        if isinstance(tree, ScanOp):
            if tree.table in self._delta_tables:
                return [
                    DeltaScanOp(
                        tree.columns,
                        False,
                        tree.table,
                        tree.indices,
                        tree.dedup,
                    )
                ]
            return []
        if isinstance(tree, FixOp):
            delta = self.fix_deltas.get(id(tree))
            if delta is None or not self.kernel.nrows(delta):
                return []
            return [_TableOp(tree.columns, False, delta)]
        variants: list[PhysOp] = []
        for field_name in _CHILD_FIELDS.get(type(tree), ()):
            child = getattr(tree, field_name)
            for cloned in self._root_variants(child):
                variants.append(
                    dataclasses.replace(
                        tree, closed=False, **{field_name: cloned}
                    )
                )
        return variants

    def _eval_fixpoint(self, op: FixOp, env: dict):
        seed = (
            self._fix_states.get(op.source)
            if op.closed and op.source is not None
            else None
        )
        if seed is None:
            return super()._eval_fixpoint(op, env)
        kernel = self.kernel
        # ``seed`` is (total, state, domain) from the previous run. When
        # the write interned no new values the packing domain is
        # unchanged and the converged membership state can be resumed
        # as-is; otherwise only the state is rebuilt at today's domain.
        seed_total, seed_state, seed_domain = seed
        if seed_state is not None and seed_domain == self.domain:
            if isinstance(seed_state, set):
                # Set-based states (pure-Python kernel, unpackable-width
                # rows) are mutated in place by ``difference`` — resume
                # from a copy so the cached entry stays intact if this
                # run aborts mid-way.
                seed_state = set(seed_state)
            total, state = seed_total, seed_state
        else:
            total, state = kernel.difference(
                seed_total, kernel.empty_state(), self.domain
            )
        # Round-0 frontier: per changed arm, either the union of the
        # per-occurrence delta variants (O(delta)) or — when a changed
        # scan hides inside a nested fixpoint — one full evaluation of
        # the arm against the new tables.
        parts = []
        for tree, is_step in ((op.base, False), (op.step, True)):
            if not self._subtree_changed(tree):
                continue  # unchanged arm: its contribution is ⊆ total
            if is_step:
                use_env = dict(env)
                use_env[op.var] = total
            else:
                use_env = env
            if self._variant_safe(tree):
                produced = [
                    self._eval(variant, use_env)
                    for variant in self._delta_variants(tree)
                ]
            else:
                produced = [self._eval(tree, use_env)]
            if is_step and op.step_perm is not None:
                produced = [
                    kernel.select_columns(part, op.step_perm)
                    for part in produced
                ]
            parts.extend(produced)
        if not parts:
            self.fix_deltas[id(op)] = kernel.empty(len(op.columns))
            self.fix_final_states[id(op)] = state
            return total
        frontier = parts[0]
        for part in parts[1:]:
            frontier = kernel.concat(frontier, part)
        delta, state = kernel.difference(frontier, state, self.domain)
        total = kernel.concat(total, delta)
        # Semi-naive iteration as in :meth:`_iterate_fixpoint`, but the
        # per-round deltas are also accumulated: everything beyond the
        # seed is this fixpoint's contribution to root-scope delta
        # propagation, collected at O(gained) instead of re-diffing the
        # whole total afterwards.
        gained = delta
        while kernel.nrows(delta):
            self.budget.check_now()
            produced = self._step(op, env, delta if op.linear else total)
            delta, state = kernel.difference(produced, state, self.domain)
            total = kernel.concat(total, delta)
            gained = kernel.concat(gained, delta)
        self.fix_deltas[id(op)] = gained
        self.fix_final_states[id(op)] = state
        return total

    def _subtree_changed(self, tree: PhysOp) -> bool:
        changed = self._delta_tables
        return any(
            isinstance(node, ScanOp) and node.table in changed
            for node in tree.walk()
        )

    def _variant_safe(self, tree: PhysOp) -> bool:
        """Is ``tree`` multilinear in its changed scans?

        True unless a changed scan sits under a nested fixpoint —
        fixpoints are monotone but not multilinear, so delta variants
        cannot reach through them.
        """
        if isinstance(tree, FixOp):
            return not self._subtree_changed(tree)
        return all(self._variant_safe(child) for child in tree.children())

    def _delta_variants(self, tree: PhysOp) -> list[PhysOp]:
        """One cloned operator path per changed-scan occurrence.

        Clones carry ``closed=False`` so they are never memoised — their
        transient ids must not alias a collected node's memo slot.
        """
        if isinstance(tree, ScanOp):
            if tree.table in self._delta_tables:
                return [
                    DeltaScanOp(
                        tree.columns,
                        False,
                        tree.table,
                        tree.indices,
                        tree.dedup,
                    )
                ]
            return []
        variants: list[PhysOp] = []
        for field_name in _CHILD_FIELDS.get(type(tree), ()):
            child = getattr(tree, field_name)
            for cloned in self._delta_variants(child):
                variants.append(
                    dataclasses.replace(
                        tree, closed=False, **{field_name: cloned}
                    )
                )
        return variants
