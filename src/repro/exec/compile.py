"""Compile optimised µ-RA terms into physical columnar programs.

The compiler resolves every column-name computation of the interpreter —
projection targets, natural-join key columns and output layout, union
alignment, fixpoint step alignment — into positional indices *once*, so
the executor moves whole columns without ever touching a column name.

Shared sub-terms compile to shared operator nodes, preserving the
interpreter's run-shared-work-once behaviour: the executor memoises
results of ``closed`` operators (those without free recursion variables)
by node identity. Sharing is *structural*, not by object identity — µ-RA
terms are frozen dataclasses, so equal closed subtrees hash equally and
one compiler maps them all onto a single operator node. The module keeps
one compiler (and a compiled-program cache keyed on the term itself) per
store snapshot, which makes the sharing span whole query batches:
sixteen queries that each contain ``µX. isLocatedIn ∪ ...`` share one
``FixOp`` node, and a batch executor that memoises by node identity runs
that fixpoint once for the entire batch.
"""

from __future__ import annotations

import weakref
from collections import OrderedDict
from dataclasses import dataclass, field
from weakref import WeakKeyDictionary

from repro.errors import EvaluationError
from repro.ra.terms import (
    Fix,
    Join,
    Project,
    RaTerm,
    RaUnion,
    Rel,
    Rename,
    SelectEq,
    Var,
)
from repro.storage.relational import RelationalStore


@dataclass
class PhysOp:
    """A physical columnar operator (base class)."""

    columns: tuple[str, ...]
    closed: bool

    def children(self) -> tuple["PhysOp", ...]:
        return ()

    def walk(self, seen: set[int] | None = None) -> "list[PhysOp]":
        """Every distinct operator node of this DAG (shared nodes once)."""
        seen = set() if seen is None else seen
        if id(self) in seen:
            return []
        seen.add(id(self))
        nodes = [self]
        for child in self.children():
            nodes.extend(child.walk(seen))
        return nodes

    def label(self) -> str:
        raise NotImplementedError


@dataclass
class ScanOp(PhysOp):
    """Scan an encoded base table, optionally projecting columns."""

    table: str
    indices: list[int] | None  # positions into the stored columns
    dedup: bool

    def label(self) -> str:
        text = f"ColumnScan {self.table}"
        if self.indices is not None:
            text += f" [{', '.join(self.columns)}]"
        if self.dedup:
            text += " distinct"
        return text


@dataclass
class VarOp(PhysOp):
    """Scan the current fixpoint frontier bound to a recursion variable."""

    name: str

    def label(self) -> str:
        return f"DeltaScan {self.name}"


@dataclass
class ProjectOp(PhysOp):
    child: PhysOp
    indices: list[int]
    dedup: bool

    def children(self) -> tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        text = f"ColumnProject [{', '.join(self.columns)}]"
        if self.dedup:
            text += " distinct"
        return text


@dataclass
class RenameOp(PhysOp):
    """Pure metadata: same columns, new names (zero data movement)."""

    child: PhysOp

    def children(self) -> tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"ColumnRename -> [{', '.join(self.columns)}]"


@dataclass
class SelectEqOp(PhysOp):
    child: PhysOp
    index_a: int
    index_b: int

    def children(self) -> tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return (
            f"ColumnFilter {self.columns[self.index_a]} = "
            f"{self.columns[self.index_b]}"
        )


@dataclass
class JoinOp(PhysOp):
    """Hash join on encoded key columns (build side chosen at run time)."""

    left: PhysOp
    right: PhysOp
    shared: tuple[str, ...]
    left_key: list[int]
    right_key: list[int]
    layout: list[tuple[int, int]]  # output column <- (side, position)

    def children(self) -> tuple[PhysOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        condition = ", ".join(self.shared) if self.shared else "cartesian"
        return f"VecHashJoin on ({condition})"


@dataclass
class UnionOp(PhysOp):
    left: PhysOp
    right: PhysOp
    right_perm: list[int] | None

    def children(self) -> tuple[PhysOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "VecUnion distinct"


@dataclass
class FixOp(PhysOp):
    """Least fixpoint over delta frontiers (semi-naive when linear)."""

    var: str
    base: PhysOp
    step: PhysOp
    step_perm: list[int] | None
    linear: bool
    #: The source :class:`~repro.ra.terms.Fix` term (a frozen, value-
    #: hashable dataclass). Cached fixpoint states are keyed on it, so
    #: incremental maintenance survives recompilation: a logically equal
    #: fixpoint in a rebuilt program finds the state of its predecessor.
    source: object | None = field(default=None, repr=False)

    def children(self) -> tuple[PhysOp, ...]:
        return (self.base, self.step)

    def label(self) -> str:
        mode = "SemiNaiveFixpoint" if self.linear else "NaiveFixpoint"
        return f"{mode} {self.var} [{', '.join(self.columns)}]"


@dataclass
class CompiledProgram:
    """A compiled columnar program: the operator DAG plus scan manifest."""

    root: PhysOp
    columns: tuple[str, ...]
    scan_tables: tuple[str, ...]
    term: RaTerm = field(repr=False)

    def render(self) -> str:
        return _render(self.root, 0, set())


#: Bounds for the per-store compile caches: a long-lived serving process
#: with high query diversity must not retain every program ever compiled
#: (the session's plan LRU is the real working-set bound; these caps only
#: keep the sharing substrate from growing without limit).
_MAX_PROGRAMS = 512
_MAX_MEMO_OPS = 8192


class _CompileCache:
    """Per-store compiler state, invalidated by the store version.

    Holds one :class:`_Compiler` (whose closed-subterm memo makes equal
    subtrees share operator nodes across *all* programs compiled against
    this snapshot) and the finished programs keyed on the term itself —
    re-preparing a logically identical query costs one hash lookup.
    Both sides are bounded: programs evict least-recently-compiled past
    ``_MAX_PROGRAMS``, and the subterm memo is dropped wholesale past
    ``_MAX_MEMO_OPS`` (later compilations just rebuild their sharing).
    """

    __slots__ = ("version", "compiler", "programs")

    def __init__(self, store: RelationalStore):
        self.version = store.version
        self.compiler = _Compiler(store)
        self.programs: "OrderedDict[RaTerm, CompiledProgram]" = OrderedDict()


_CACHES: "WeakKeyDictionary[RelationalStore, _CompileCache]" = (
    WeakKeyDictionary()
)


def _cache_for(store: RelationalStore) -> _CompileCache:
    cache = _CACHES.get(store)
    if cache is None or cache.version != store.version:
        # Compilation only reads table *shapes* (column tuples), which
        # append-only writes cannot change — programs, and the node
        # sharing between them, stay valid across such deltas. Barrier
        # writes (new tables, replacements) rebuild as before.
        if cache is not None and store.delta_since(cache.version) is not None:
            cache.version = store.version
            return cache
        cache = _CompileCache(store)
        _CACHES[store] = cache
    return cache


def compile_term(term: RaTerm, store: RelationalStore) -> CompiledProgram:
    """Compile ``term`` (columns resolved against ``store``) to a program.

    Compilation is cached per store snapshot and keyed on the term's
    structural hash; distinct terms compiled against the same snapshot
    share the operator nodes of their equal closed subtrees.
    """
    cache = _cache_for(store)
    program = cache.programs.get(term)
    if program is not None:
        cache.programs.move_to_end(term)
        return program
    root = cache.compiler.compile(term, {})
    scans = sorted(
        {op.table for op in root.walk() if isinstance(op, ScanOp)}
    )
    program = CompiledProgram(root, root.columns, tuple(scans), term)
    cache.programs[term] = program
    if len(cache.programs) > _MAX_PROGRAMS:
        cache.programs.popitem(last=False)
    cache.compiler.trim(_MAX_MEMO_OPS)
    return program


def render_program(program: CompiledProgram) -> str:
    return program.render()


def _is_linear(term: RaTerm, var: str) -> bool:
    count = sum(
        1 for node in term.walk() if isinstance(node, Var) and node.name == var
    )
    return count == 1


class _Compiler:
    def __init__(self, store: RelationalStore):
        # Weak, so the per-store cache entry in ``_CACHES`` (which holds
        # this compiler) cannot pin its own key alive forever; callers
        # always hold the store while compiling against it.
        self._store_ref = weakref.ref(store)
        self._memo: dict[RaTerm, PhysOp] = {}

    @property
    def store(self) -> RelationalStore:
        store = self._store_ref()
        if store is None:  # pragma: no cover - caller always holds the store
            raise ReferenceError("the compiled store no longer exists")
        return store

    def trim(self, max_ops: int) -> None:
        """Drop the subterm memo once it outgrows ``max_ops`` entries.

        Sharing between *future* compilations restarts from empty; nodes
        already woven into cached programs stay shared through those
        programs' references.
        """
        if len(self._memo) > max_ops:
            self._memo.clear()

    def compile(
        self, term: RaTerm, var_env: dict[str, tuple[str, ...]]
    ) -> PhysOp:
        # Mirror the evaluator's memo: only closed terms are shared — a
        # term under a fixpoint compiles against its binding's columns.
        # Keying on the term *value* (terms are frozen dataclasses) makes
        # equal subtrees from different queries share one operator node.
        cacheable = not isinstance(term, Var) and not term.free_vars()
        if cacheable:
            hit = self._memo.get(term)
            if hit is not None:
                return hit
        op = self._compile(term, var_env)
        if cacheable:
            self._memo[term] = op
        return op

    def _compile(
        self, term: RaTerm, var_env: dict[str, tuple[str, ...]]
    ) -> PhysOp:
        closed = not term.free_vars()
        if isinstance(term, Rel):
            stored = self.store.table(term.name).columns
            if term.projection is None or term.projection == stored:
                return ScanOp(stored, closed, term.name, None, False)
            indices = [stored.index(c) for c in term.projection]
            # Projection is injective (no duplicate rows possible) exactly
            # when the kept names still cover every source column.
            dedup = set(term.projection) != set(stored)
            return ScanOp(term.projection, closed, term.name, indices, dedup)
        if isinstance(term, Var):
            bound = var_env.get(term.name, term.var_columns)
            return VarOp(bound, False, term.name)
        if isinstance(term, Project):
            child = self.compile(term.child, var_env)
            indices = [child.columns.index(c) for c in term.keep]
            dedup = set(term.keep) != set(child.columns)
            return ProjectOp(term.keep, closed, child, indices, dedup)
        if isinstance(term, Rename):
            child = self.compile(term.child, var_env)
            mapping = dict(term.mapping)
            renamed = tuple(mapping.get(c, c) for c in child.columns)
            return RenameOp(renamed, closed, child)
        if isinstance(term, SelectEq):
            child = self.compile(term.child, var_env)
            return SelectEqOp(
                child.columns,
                closed,
                child,
                child.columns.index(term.column_a),
                child.columns.index(term.column_b),
            )
        if isinstance(term, Join):
            left = self.compile(term.left, var_env)
            right = self.compile(term.right, var_env)
            shared = tuple(c for c in left.columns if c in right.columns)
            out = left.columns + tuple(
                c for c in right.columns if c not in left.columns
            )
            layout = [
                (0, left.columns.index(c))
                if c in left.columns
                else (1, right.columns.index(c))
                for c in out
            ]
            return JoinOp(
                out,
                closed,
                left,
                right,
                shared,
                [left.columns.index(c) for c in shared],
                [right.columns.index(c) for c in shared],
                layout,
            )
        if isinstance(term, RaUnion):
            left = self.compile(term.left, var_env)
            right = self.compile(term.right, var_env)
            if set(left.columns) != set(right.columns):
                raise EvaluationError(
                    f"union arms disagree on columns: "
                    f"{left.columns} vs {right.columns}"
                )
            perm = None
            if right.columns != left.columns:
                perm = [right.columns.index(c) for c in left.columns]
            return UnionOp(left.columns, closed, left, right, perm)
        if isinstance(term, Fix):
            base = self.compile(term.base, var_env)
            step_env = dict(var_env)
            step_env[term.var] = base.columns
            step = self.compile(term.step, step_env)
            if set(step.columns) != set(base.columns):
                raise EvaluationError(
                    f"fixpoint step columns {step.columns} disagree with "
                    f"base columns {base.columns}"
                )
            perm = None
            if step.columns != base.columns:
                perm = [step.columns.index(c) for c in base.columns]
            return FixOp(
                base.columns,
                closed,
                term.var,
                base,
                step,
                perm,
                _is_linear(term.step, term.var),
                source=term,
            )
        raise EvaluationError(f"unknown RA term {term!r}")


def _render(op: PhysOp, indent: int, seen: set[int]) -> str:
    pad = "  " * indent
    line = pad + op.label()
    if id(op) in seen:
        return line + "  (shared, shown above)"
    seen.add(id(op))
    parts = [line]
    parts.extend(_render(child, indent + 1, seen) for child in op.children())
    return "\n".join(parts)
