"""Compile optimised µ-RA terms into physical columnar programs.

The compiler resolves every column-name computation of the interpreter —
projection targets, natural-join key columns and output layout, union
alignment, fixpoint step alignment — into positional indices *once*, so
the executor moves whole columns without ever touching a column name.

Shared sub-terms (the translator reuses term objects for repeated
sub-expressions) compile to shared operator nodes, preserving the
interpreter's run-shared-work-once behaviour: the executor memoises
results of ``closed`` operators (those without free recursion variables)
by node identity.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import EvaluationError
from repro.ra.terms import (
    Fix,
    Join,
    Project,
    RaTerm,
    RaUnion,
    Rel,
    Rename,
    SelectEq,
    Var,
)
from repro.storage.relational import RelationalStore


@dataclass
class PhysOp:
    """A physical columnar operator (base class)."""

    columns: tuple[str, ...]
    closed: bool

    def children(self) -> tuple["PhysOp", ...]:
        return ()

    def label(self) -> str:
        raise NotImplementedError


@dataclass
class ScanOp(PhysOp):
    """Scan an encoded base table, optionally projecting columns."""

    table: str
    indices: list[int] | None  # positions into the stored columns
    dedup: bool

    def label(self) -> str:
        text = f"ColumnScan {self.table}"
        if self.indices is not None:
            text += f" [{', '.join(self.columns)}]"
        if self.dedup:
            text += " distinct"
        return text


@dataclass
class VarOp(PhysOp):
    """Scan the current fixpoint frontier bound to a recursion variable."""

    name: str

    def label(self) -> str:
        return f"DeltaScan {self.name}"


@dataclass
class ProjectOp(PhysOp):
    child: PhysOp
    indices: list[int]
    dedup: bool

    def children(self) -> tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        text = f"ColumnProject [{', '.join(self.columns)}]"
        if self.dedup:
            text += " distinct"
        return text


@dataclass
class RenameOp(PhysOp):
    """Pure metadata: same columns, new names (zero data movement)."""

    child: PhysOp

    def children(self) -> tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return f"ColumnRename -> [{', '.join(self.columns)}]"


@dataclass
class SelectEqOp(PhysOp):
    child: PhysOp
    index_a: int
    index_b: int

    def children(self) -> tuple[PhysOp, ...]:
        return (self.child,)

    def label(self) -> str:
        return (
            f"ColumnFilter {self.columns[self.index_a]} = "
            f"{self.columns[self.index_b]}"
        )


@dataclass
class JoinOp(PhysOp):
    """Hash join on encoded key columns (build side chosen at run time)."""

    left: PhysOp
    right: PhysOp
    shared: tuple[str, ...]
    left_key: list[int]
    right_key: list[int]
    layout: list[tuple[int, int]]  # output column <- (side, position)

    def children(self) -> tuple[PhysOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        condition = ", ".join(self.shared) if self.shared else "cartesian"
        return f"VecHashJoin on ({condition})"


@dataclass
class UnionOp(PhysOp):
    left: PhysOp
    right: PhysOp
    right_perm: list[int] | None

    def children(self) -> tuple[PhysOp, ...]:
        return (self.left, self.right)

    def label(self) -> str:
        return "VecUnion distinct"


@dataclass
class FixOp(PhysOp):
    """Least fixpoint over delta frontiers (semi-naive when linear)."""

    var: str
    base: PhysOp
    step: PhysOp
    step_perm: list[int] | None
    linear: bool

    def children(self) -> tuple[PhysOp, ...]:
        return (self.base, self.step)

    def label(self) -> str:
        mode = "SemiNaiveFixpoint" if self.linear else "NaiveFixpoint"
        return f"{mode} {self.var} [{', '.join(self.columns)}]"


@dataclass
class CompiledProgram:
    """A compiled columnar program: the operator DAG plus scan manifest."""

    root: PhysOp
    columns: tuple[str, ...]
    scan_tables: tuple[str, ...]
    term: RaTerm = field(repr=False)

    def render(self) -> str:
        return _render(self.root, 0, set())


def compile_term(term: RaTerm, store: RelationalStore) -> CompiledProgram:
    """Compile ``term`` (columns resolved against ``store``) to a program."""
    compiler = _Compiler(store)
    root = compiler.compile(term, {})
    return CompiledProgram(
        root, root.columns, tuple(sorted(compiler.scans)), term
    )


def render_program(program: CompiledProgram) -> str:
    return program.render()


def _is_linear(term: RaTerm, var: str) -> bool:
    count = sum(
        1 for node in term.walk() if isinstance(node, Var) and node.name == var
    )
    return count == 1


class _Compiler:
    def __init__(self, store: RelationalStore):
        self.store = store
        self.scans: set[str] = set()
        self._memo: dict[int, PhysOp] = {}

    def compile(
        self, term: RaTerm, var_env: dict[str, tuple[str, ...]]
    ) -> PhysOp:
        # Mirror the evaluator's memo: only closed terms are shared — a
        # term under a fixpoint compiles against its binding's columns.
        cacheable = not isinstance(term, Var) and not term.free_vars()
        if cacheable:
            hit = self._memo.get(id(term))
            if hit is not None:
                return hit
        op = self._compile(term, var_env)
        if cacheable:
            self._memo[id(term)] = op
        return op

    def _compile(
        self, term: RaTerm, var_env: dict[str, tuple[str, ...]]
    ) -> PhysOp:
        closed = not term.free_vars()
        if isinstance(term, Rel):
            self.scans.add(term.name)
            stored = self.store.table(term.name).columns
            if term.projection is None or term.projection == stored:
                return ScanOp(stored, closed, term.name, None, False)
            indices = [stored.index(c) for c in term.projection]
            # Projection is injective (no duplicate rows possible) exactly
            # when the kept names still cover every source column.
            dedup = set(term.projection) != set(stored)
            return ScanOp(term.projection, closed, term.name, indices, dedup)
        if isinstance(term, Var):
            bound = var_env.get(term.name, term.var_columns)
            return VarOp(bound, False, term.name)
        if isinstance(term, Project):
            child = self.compile(term.child, var_env)
            indices = [child.columns.index(c) for c in term.keep]
            dedup = set(term.keep) != set(child.columns)
            return ProjectOp(term.keep, closed, child, indices, dedup)
        if isinstance(term, Rename):
            child = self.compile(term.child, var_env)
            mapping = dict(term.mapping)
            renamed = tuple(mapping.get(c, c) for c in child.columns)
            return RenameOp(renamed, closed, child)
        if isinstance(term, SelectEq):
            child = self.compile(term.child, var_env)
            return SelectEqOp(
                child.columns,
                closed,
                child,
                child.columns.index(term.column_a),
                child.columns.index(term.column_b),
            )
        if isinstance(term, Join):
            left = self.compile(term.left, var_env)
            right = self.compile(term.right, var_env)
            shared = tuple(c for c in left.columns if c in right.columns)
            out = left.columns + tuple(
                c for c in right.columns if c not in left.columns
            )
            layout = [
                (0, left.columns.index(c))
                if c in left.columns
                else (1, right.columns.index(c))
                for c in out
            ]
            return JoinOp(
                out,
                closed,
                left,
                right,
                shared,
                [left.columns.index(c) for c in shared],
                [right.columns.index(c) for c in shared],
                layout,
            )
        if isinstance(term, RaUnion):
            left = self.compile(term.left, var_env)
            right = self.compile(term.right, var_env)
            if set(left.columns) != set(right.columns):
                raise EvaluationError(
                    f"union arms disagree on columns: "
                    f"{left.columns} vs {right.columns}"
                )
            perm = None
            if right.columns != left.columns:
                perm = [right.columns.index(c) for c in left.columns]
            return UnionOp(left.columns, closed, left, right, perm)
        if isinstance(term, Fix):
            base = self.compile(term.base, var_env)
            step_env = dict(var_env)
            step_env[term.var] = base.columns
            step = self.compile(term.step, step_env)
            if set(step.columns) != set(base.columns):
                raise EvaluationError(
                    f"fixpoint step columns {step.columns} disagree with "
                    f"base columns {base.columns}"
                )
            perm = None
            if step.columns != base.columns:
                perm = [step.columns.index(c) for c in base.columns]
            return FixOp(
                base.columns,
                closed,
                term.var,
                base,
                step,
                perm,
                _is_linear(term.step, term.var),
            )
        raise EvaluationError(f"unknown RA term {term!r}")


def _render(op: PhysOp, indent: int, seen: set[int]) -> str:
    pad = "  " * indent
    line = pad + op.label()
    if id(op) in seen:
        return line + "  (shared, shown above)"
    seen.add(id(op))
    parts = [line]
    parts.extend(_render(child, indent + 1, seen) for child in op.children())
    return "\n".join(parts)
