"""Multi-process sharded morsels — real parallelism despite the GIL.

:class:`ProcessMorselKernel` is the process-pool sibling of
:class:`~repro.exec.parallel.MorselKernel`: the same operator surface,
the same build-once/probe-morsels join and hash-partitioned dedup, but
each shard runs in a persistent **worker process**, so pure-Python
kernel code overlaps on real cores instead of serialising behind the
GIL. This is the first genuine speedup path for the dependency-free
kernel (numpy morsels already overlap on threads).

Morsels are shipped **zero-pickle**: the parent writes the operand's
integer columns once into a flat int64 file under the spill directory
(:class:`~repro.exec.spill.SpillManager`) and each worker maps or seeks
exactly its ``[start, stop)`` row slice — numpy workers via
``np.memmap`` views, pure-Python workers via per-column ``array('q')``
reads. Results travel back the same way (a file per shard), so no row
tuples are ever pickled across the process boundary.

Partitioning matches the thread path operator for operator:

* **join** — the build side is written once and indexed *inside each
  worker* (cached per build file, so one fixpoint round pays one index
  per worker), probe morsels fan out by row range;
* **dedup / union distinct** — rows are hash-partitioned in the parent
  (equal rows share a shard), each partition dedups in its own worker,
  and the merge is concat-only;
* **selection** — ``select_eq`` filters row ranges independently.

The pool is module-global and persists across executions (a per-query
pool would pay process start-up every time and erase the speedup); it
is sized up on demand and torn down via :func:`shutdown_pool` or
interpreter exit. When the platform cannot start worker processes at
all, every operator silently degrades to the sequential base kernel —
results are identical in every configuration, which the property suite
checks on both kernels.

``fault_point("shard.worker")`` fires in the parent before each shard
dispatch and *raises* (retryable: the degradation loop may re-run the
query, sequentially if need be).
"""

from __future__ import annotations

import atexit
import os
import threading
from array import array
from concurrent.futures import ProcessPoolExecutor

from repro.exec.parallel import MorselKernel, morsel_ranges
from repro.exec.spill import SpillManager
from repro.testing.faults import fault_point

try:  # pragma: no cover - exercised via whichever kernel is active
    import numpy as _np
except ImportError:  # pragma: no cover - numpy genuinely absent
    _np = None  # type: ignore[assignment]

_INT_BYTES = 8

# -- the persistent worker pool ----------------------------------------------

_pool: ProcessPoolExecutor | None = None
_pool_workers = 0
_pool_broken = False
_pool_lock = threading.Lock()


def _make_pool(workers: int) -> ProcessPoolExecutor:
    import multiprocessing

    methods = multiprocessing.get_all_start_methods()
    # fork shares the already-imported interpreter state (cheapest start,
    # no re-import); spawn is the portable fallback.
    context = multiprocessing.get_context(
        "fork" if "fork" in methods else None
    )
    return ProcessPoolExecutor(max_workers=workers, mp_context=context)


def _ensure_pool(workers: int) -> ProcessPoolExecutor | None:
    """The shared pool, grown to ``workers``; ``None`` when unavailable."""
    global _pool, _pool_workers, _pool_broken
    with _pool_lock:
        if _pool_broken:
            return None
        if _pool is None or _pool_workers < workers:
            previous = _pool
            try:
                _pool = _make_pool(workers)
                _pool_workers = workers
            except (OSError, ValueError, RuntimeError):
                _pool_broken = True  # don't retry per operator
                _pool = previous
                return None
            if previous is not None:
                previous.shutdown(wait=False, cancel_futures=True)
        return _pool


def shutdown_pool() -> None:
    """Tear down the shared worker pool (tests; interpreter exit)."""
    global _pool, _pool_workers, _pool_broken
    with _pool_lock:
        if _pool is not None:
            _pool.shutdown(wait=True, cancel_futures=True)
        _pool = None
        _pool_workers = 0
        _pool_broken = False


atexit.register(shutdown_pool)


# -- zero-pickle table transport ---------------------------------------------


def _write_columns(path: str, cols, nrows: int) -> None:
    """Write columns as one flat column-major int64 file."""
    with open(path, "wb") as handle:
        for column in cols:
            if _np is not None and isinstance(column, _np.ndarray):
                _np.ascontiguousarray(column, dtype=_np.int64).tofile(handle)
            else:
                array("q", column).tofile(handle)


def _read_columns(
    kernel, path: str, ncols: int, nrows: int, start: int, stop: int
):
    """The ``[start, stop)`` row slice of a transported table.

    numpy kernels get zero-copy memmap views of exactly that range;
    the pure-Python kernel seeks each column region and reads only the
    ``stop - start`` values it needs.
    """
    count = max(stop - start, 0)
    if ncols == 0 or nrows == 0 or count == 0:
        # Zero-byte files can't be mapped; an empty (or width-0) slice
        # needs no file access at all.
        return kernel.from_columns([[] for _ in range(ncols)], count)
    if getattr(kernel, "SUPPORTS_MEMMAP", False) and _np is not None:
        mapped = _np.memmap(
            path, dtype=_np.int64, mode="r", shape=(ncols, nrows)
        )
        cols = [mapped[i, start:stop] for i in range(ncols)]
    else:
        cols = []
        with open(path, "rb") as handle:
            for i in range(ncols):
                handle.seek((i * nrows + start) * _INT_BYTES)
                buffer = array("q")
                buffer.fromfile(handle, count)
                cols.append(buffer.tolist())
    return kernel.from_columns(cols, count)


def _kernel(name: str):
    from repro.exec.kernels import get_kernel

    return get_kernel(name)


def _write_result(kernel, table, path: str) -> tuple[str, int, int]:
    cols = table.cols
    _write_columns(path, cols, kernel.nrows(table))
    return path, kernel.nrows(table), len(cols)


# -- worker-side shard bodies -------------------------------------------------

#: Per-worker cache of indexed join build sides, keyed by build file —
#: a fixpoint probing one static relation across many morsels (and
#: rounds) indexes it once per worker, not once per shard.
_BUILD_CACHE: dict[tuple[str, str], object] = {}
_BUILD_CACHE_LIMIT = 32


def _cached_build(kernel_name: str, path: str, ncols: int, nrows: int, key, domain):
    cache_key = (kernel_name, path)
    handle = _BUILD_CACHE.get(cache_key)
    if handle is None:
        kernel = _kernel(kernel_name)
        build = _read_columns(kernel, path, ncols, nrows, 0, nrows)
        handle = kernel.join_build(build, list(key), domain)
        if len(_BUILD_CACHE) >= _BUILD_CACHE_LIMIT:
            _BUILD_CACHE.clear()
        _BUILD_CACHE[cache_key] = handle
    return handle


def _shard_join_probe(
    kernel_name, build_path, build_shape, build_key,
    probe_path, probe_shape, start, stop,
    probe_key, layout, build_side, domain, out_path,
):
    kernel = _kernel(kernel_name)
    handle = _cached_build(
        kernel_name, build_path, build_shape[0], build_shape[1],
        build_key, domain,
    )
    probe = _read_columns(
        kernel, probe_path, probe_shape[0], probe_shape[1], start, stop
    )
    result = kernel.join_probe(
        handle, probe, list(probe_key), list(layout), build_side, domain
    )
    return _write_result(kernel, result, out_path)


def _shard_distinct(kernel_name, path, shape, domain, out_path):
    kernel = _kernel(kernel_name)
    table = _read_columns(kernel, path, shape[0], shape[1], 0, shape[1])
    return _write_result(kernel, kernel.distinct(table, domain), out_path)


def _shard_select_eq(
    kernel_name, path, shape, start, stop, index_a, index_b, out_path
):
    kernel = _kernel(kernel_name)
    table = _read_columns(kernel, path, shape[0], shape[1], start, stop)
    return _write_result(
        kernel, kernel.select_eq(table, index_a, index_b), out_path
    )


# -- the parent-side kernel wrapper -------------------------------------------


class ProcessMorselKernel(MorselKernel):
    """A kernel wrapped for multi-process sharded execution.

    Same surface and counters as :class:`MorselKernel`, plus
    ``shards_dispatched`` (worker tasks actually shipped). ``manager``
    is the spill manager whose directory carries the shard files; when
    ``None`` an ephemeral one is created and removed on :meth:`close`.
    Worker processes bypass the GIL, so ``effective_parallelism`` is
    the full worker count on *every* kernel — including pure Python.
    """

    def __init__(
        self,
        base,
        parallelism: int,
        morsel_size: int | None = None,
        budget=None,
        manager: SpillManager | None = None,
    ):
        super().__init__(base, parallelism, morsel_size, budget=budget)
        self.shards_dispatched = 0
        self._manager = manager
        self._owns_manager = False

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        # The worker pool is shared and persistent — only the transport
        # directory (when we created it) is torn down per execution.
        if self._owns_manager and self._manager is not None:
            self._manager.close()
            self._manager = None
            self._owns_manager = False
        super().close()

    # -- dispatch helpers --------------------------------------------------
    @property
    def effective_parallelism(self) -> int:
        return self.parallelism

    def _transport(self) -> SpillManager:
        if self._manager is None or self._manager.closed:
            self._manager = SpillManager()
            self._owns_manager = True
        return self._manager

    def _ship(self, manager: SpillManager, tag: str, table) -> tuple[str, tuple[int, int]]:
        base = self.base
        path = manager._next_path(tag)
        _write_columns(path, table.cols, base.nrows(table))
        return path, (base.width(table), base.nrows(table))

    def _run_shards(self, pool, calls):
        """Dispatch shard bodies; returns result metas in call order."""
        if self.budget is not None:
            self.budget.check_now()
        self.parallel_ops += 1
        futures = []
        for fn, args in calls:
            fault_point("shard.worker")
            self.morsels_dispatched += 1
            self.shards_dispatched += 1
            futures.append(pool.submit(fn, *args))
        results = [future.result() for future in futures]
        if self.budget is not None:
            self.budget.check_now()
        return results

    def _collect(self, meta):
        """Load one shard's result table, reclaiming its file."""
        path, nrows, ncols = meta
        base = self.base
        table = _read_columns(base, path, ncols, nrows, 0, nrows)
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - already gone
            pass
        return table

    @staticmethod
    def _cleanup(paths) -> None:
        for path in paths:
            try:
                os.unlink(path)
            except OSError:
                pass

    # -- sharded operators -------------------------------------------------
    def join(self, left, right, left_key, right_key, layout, domain):
        base = self.base
        if base.nrows(left) <= base.nrows(right):
            build, probe = left, right
            build_key, probe_key = left_key, right_key
            build_side = 0
        else:
            build, probe = right, left
            build_key, probe_key = right_key, left_key
            build_side = 1
        nprobe = base.nrows(probe)
        sequential = lambda: base.join(  # noqa: E731 - shared fallback
            left, right, left_key, right_key, layout, domain
        )
        if not self._fans_out(nprobe):
            return sequential()
        # Packability probe on an empty slice: a key too wide to pack
        # must run as one sequential join, exactly like the thread path.
        if base.join_build(
            base.slice_rows(build, 0, 0), build_key, domain
        ) is None:
            return sequential()
        pool = _ensure_pool(self.parallelism)
        if pool is None:
            return sequential()
        manager = self._transport()
        build_path, build_shape = self._ship(manager, "shard-build", build)
        probe_path, probe_shape = self._ship(manager, "shard-probe", probe)
        try:
            calls = [
                (
                    _shard_join_probe,
                    (
                        base.NAME, build_path, build_shape, list(build_key),
                        probe_path, probe_shape, start, stop,
                        list(probe_key), [tuple(entry) for entry in layout],
                        build_side, domain,
                        manager._next_path("shard-join-out"),
                    ),
                )
                for start, stop in morsel_ranges(
                    nprobe, self._morsel_size_for(nprobe)
                )
            ]
            metas = self._run_shards(pool, calls)
            partials = [self._collect(meta) for meta in metas]
        finally:
            self._cleanup([build_path, probe_path])
        return base.concat_many(partials, len(layout))

    def distinct(self, table, domain):
        base = self.base
        if not self._fans_out(base.nrows(table)) or base.width(table) == 0:
            return base.distinct(table, domain)
        parts = base.hash_partition(table, self.parallelism, domain)
        if len(parts) == 1:  # row too wide to partition by packed key
            return base.distinct(table, domain)
        pool = _ensure_pool(self.parallelism)
        if pool is None:
            return base.distinct(table, domain)
        manager = self._transport()
        shipped = [
            self._ship(manager, "shard-part", part)
            for part in parts
            if base.nrows(part)
        ]
        try:
            calls = [
                (
                    _shard_distinct,
                    (
                        base.NAME, path, shape, domain,
                        manager._next_path("shard-distinct-out"),
                    ),
                )
                for path, shape in shipped
            ]
            metas = self._run_shards(pool, calls)
            partials = [self._collect(meta) for meta in metas]
        finally:
            self._cleanup([path for path, _shape in shipped])
        return base.concat_many(partials, base.width(table))

    def select_eq(self, table, index_a, index_b):
        base = self.base
        nrows = base.nrows(table)
        if not self._fans_out(nrows):
            return base.select_eq(table, index_a, index_b)
        pool = _ensure_pool(self.parallelism)
        if pool is None:
            return base.select_eq(table, index_a, index_b)
        manager = self._transport()
        path, shape = self._ship(manager, "shard-select", table)
        try:
            calls = [
                (
                    _shard_select_eq,
                    (
                        base.NAME, path, shape, start, stop,
                        index_a, index_b,
                        manager._next_path("shard-select-out"),
                    ),
                )
                for start, stop in morsel_ranges(
                    nrows, self._morsel_size_for(nrows)
                )
            ]
            metas = self._run_shards(pool, calls)
            partials = [self._collect(meta) for meta in metas]
        finally:
            self._cleanup([path])
        return base.concat_many(partials, base.width(table))
