"""NumPy columnar kernels.

Tables are lists of ``int64`` arrays. Multi-column row identity is
handled by *key packing*: because every code is a dense dictionary id in
``[0, domain)``, a row over ``k`` columns packs into the single integer
``c_0·domain^(k-1) + … + c_k`` whenever ``domain^k`` fits in an int64 —
which turns distinct, join-key matching and fixpoint set difference into
flat operations over one integer array (``np.unique``, ``argsort`` +
``searchsorted``, ``np.isin``). When a row is too wide to pack the
kernels fall back to ``np.unique(axis=0)`` row handling; results are
identical either way.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

NAME = "numpy"

#: Large-array numpy primitives drop the GIL, so morsel tasks running
#: these kernels genuinely overlap on multiple cores.
RELEASES_GIL = True

#: Tables can be built over ``np.memmap`` column views — the out-of-core
#: spill path (:mod:`repro.exec.spill`) is available on this kernel.
SUPPORTS_MEMMAP = True

#: Packed keys must stay below this bound (headroom under 2^63 - 1).
_PACK_LIMIT = 1 << 62

_INT = np.int64


class NpTable:
    """Columns of integer codes over an explicit row count."""

    __slots__ = ("cols", "n")

    def __init__(self, cols: list[np.ndarray], n: int):
        self.cols = cols
        self.n = n


def from_columns(codes: list[list[int]], nrows: int) -> NpTable:
    return NpTable([np.asarray(column, dtype=_INT) for column in codes], nrows)


def from_rows(rows: Iterable[tuple[int, ...]], width: int) -> NpTable:
    rows = list(rows)
    if not rows:
        return empty(width)
    data = np.asarray(rows, dtype=_INT)
    return NpTable([data[:, i] for i in range(width)], len(rows))


def to_rows(table: NpTable) -> list[tuple[int, ...]]:
    if not table.cols:
        return [()] * table.n
    stacked = np.stack(table.cols, axis=1)
    return [tuple(row) for row in stacked.tolist()]


def nrows(table: NpTable) -> int:
    return table.n


def width(table: NpTable) -> int:
    return len(table.cols)


def empty(width: int) -> NpTable:
    return NpTable([np.empty(0, dtype=_INT) for _ in range(width)], 0)


def select_columns(table: NpTable, indices: list[int]) -> NpTable:
    return NpTable([table.cols[i] for i in indices], table.n)


def slice_rows(table: NpTable, start: int, stop: int) -> NpTable:
    """The morsel ``[start, stop)`` of ``table`` (array views, no copy)."""
    stop = min(stop, table.n)
    start = max(start, 0)
    n = max(stop - start, 0)
    return NpTable([column[start:stop] for column in table.cols], n)


def concat_many(tables: list[NpTable], width: int) -> NpTable:
    """Stack same-width tables with one concatenate per column."""
    tables = [table for table in tables if table.n]
    if not tables:
        return empty(width)
    if len(tables) == 1:
        return tables[0]
    cols = [
        np.concatenate([table.cols[i] for table in tables])
        for i in range(width)
    ]
    return NpTable(cols, sum(table.n for table in tables))


def hash_partition(table: NpTable, nparts: int, domain: int) -> list[NpTable]:
    """Split rows so equal rows land in the same partition.

    Per-partition dedup is then exact and the merge is concat-only — the
    parallel-safe union. Falls back to one partition when the row is too
    wide to pack (callers then just run that partition sequentially).
    """
    if nparts <= 1 or table.n == 0 or not table.cols:
        return [table]
    key = _pack(table, list(range(len(table.cols))), domain)
    if key is None:
        return [table]
    part = key % nparts
    out = []
    for i in range(nparts):
        mask = part == i
        out.append(
            NpTable([column[mask] for column in table.cols], int(mask.sum()))
        )
    return out


def _take(table: NpTable, row_indices: np.ndarray) -> NpTable:
    return NpTable(
        [column[row_indices] for column in table.cols], len(row_indices)
    )


def _pack(table: NpTable, indices: list[int], domain: int) -> np.ndarray | None:
    """Pack the keyed columns into one int64 key array (None on overflow)."""
    span = 1
    for _ in indices:
        span *= domain
        if span >= _PACK_LIMIT:
            return None
    if not indices:
        return np.zeros(table.n, dtype=_INT)
    key = table.cols[indices[0]].copy()
    for index in indices[1:]:
        key *= domain
        key += table.cols[index]
    return key


def distinct(table: NpTable, domain: int) -> NpTable:
    if table.n <= 1 or not table.cols:
        return table
    key = _pack(table, list(range(len(table.cols))), domain)
    if key is not None:
        _, first = np.unique(key, return_index=True)
        if len(first) == table.n:
            return table
        return _take(table, first)
    unique = np.unique(np.stack(table.cols, axis=1), axis=0)
    return NpTable(
        [unique[:, i] for i in range(len(table.cols))], unique.shape[0]
    )


def select_eq(table: NpTable, index_a: int, index_b: int) -> NpTable:
    mask = table.cols[index_a] == table.cols[index_b]
    return NpTable([column[mask] for column in table.cols], int(mask.sum()))


def concat(left: NpTable, right: NpTable) -> NpTable:
    if left.n == 0:
        return right
    if right.n == 0:
        return left
    cols = [
        np.concatenate((a, b)) for a, b in zip(left.cols, right.cols)
    ]
    return NpTable(cols, left.n + right.n)


class JoinBuild:
    """The shared build side of a hash join: keys sorted once, probed by
    any number of (possibly concurrent) probe morsels."""

    __slots__ = ("table", "sorted_keys", "order")

    def __init__(self, table: NpTable, sorted_keys, order):
        self.table = table
        self.sorted_keys = sorted_keys
        self.order = order


def join_build(
    build: NpTable, key: list[int], domain: int
) -> JoinBuild | None:
    """Sort-index the build side once; ``None`` when the key won't pack."""
    packed = _pack(build, key, domain)
    if packed is None:
        return None
    order = np.argsort(packed, kind="stable")
    return JoinBuild(build, packed[order], order)


def join_probe(
    handle: JoinBuild,
    probe: NpTable,
    probe_key: list[int],
    layout: list[tuple[int, int]],
    build_side: int,
    domain: int,
) -> NpTable:
    """Probe one morsel against a prepared build side.

    ``layout`` maps output columns to ``(side, column)``; ``build_side``
    says which side number the build table carries. The probe key packs
    whenever the build key did (same width, same domain).
    """
    build = handle.table
    probe_packed = _pack(probe, probe_key, domain)
    lo = np.searchsorted(handle.sorted_keys, probe_packed, side="left")
    hi = np.searchsorted(handle.sorted_keys, probe_packed, side="right")
    counts = hi - lo
    total = int(counts.sum())
    if total == 0:
        return empty(len(layout))
    probe_idx = np.repeat(np.arange(probe.n, dtype=_INT), counts)
    starts = np.repeat(lo, counts)
    offsets = np.repeat(np.cumsum(counts) - counts, counts)
    build_idx = handle.order[np.arange(total, dtype=_INT) - offsets + starts]

    out_cols = []
    for side, column_index in layout:
        if side == build_side:
            out_cols.append(build.cols[column_index][build_idx])
        else:
            out_cols.append(probe.cols[column_index][probe_idx])
    return NpTable(out_cols, total)


def join(
    left: NpTable,
    right: NpTable,
    left_key: list[int],
    right_key: list[int],
    layout: list[tuple[int, int]],
    domain: int,
) -> NpTable:
    """Natural join; ``layout`` maps output columns to (side, column)."""
    # Sort the smaller side, binary-search with the larger.
    if left.n <= right.n:
        build, probe = left, right
        build_key, probe_key = left_key, right_key
        build_side = 0
    else:
        build, probe = right, left
        build_key, probe_key = right_key, left_key
        build_side = 1

    handle = join_build(build, build_key, domain)
    if handle is None:
        return _join_unpackable(left, right, left_key, right_key, layout)
    return join_probe(handle, probe, probe_key, layout, build_side, domain)


def _join_unpackable(
    left: NpTable,
    right: NpTable,
    left_key: list[int],
    right_key: list[int],
    layout: list[tuple[int, int]],
) -> NpTable:
    """Dict-based fallback when the join key is too wide to pack."""
    build_rows = to_rows(select_columns(left, left_key))
    table: dict[tuple, list[int]] = {}
    for position, key in enumerate(build_rows):
        table.setdefault(key, []).append(position)
    left_idx: list[int] = []
    right_idx: list[int] = []
    for position, key in enumerate(to_rows(select_columns(right, right_key))):
        matches = table.get(key)
        if matches:
            left_idx.extend(matches)
            right_idx.extend([position] * len(matches))
    left_take = np.asarray(left_idx, dtype=_INT)
    right_take = np.asarray(right_idx, dtype=_INT)
    out_cols = []
    for side, column_index in layout:
        if side == 0:
            out_cols.append(left.cols[column_index][left_take])
        else:
            out_cols.append(right.cols[column_index][right_take])
    return NpTable(out_cols, len(left_idx))


def empty_state():
    return None


def difference(table: NpTable, state, domain: int):
    """Rows of ``table`` not yet in ``state``; returns (delta, state).

    The state is a sorted array of packed row keys when the row width
    packs into int64, else a Python set of row tuples.
    """
    key = _pack(table, list(range(len(table.cols))), domain)
    if key is None:
        if state is None:
            state = set()
        fresh = [row for row in set(to_rows(table)) if row not in state]
        state.update(fresh)
        return from_rows(fresh, len(table.cols)), state
    if state is None:
        state = np.empty(0, dtype=_INT)
    # The state stays sorted, so membership is a binary search and the
    # fresh keys merge in with one linear pass (np.insert at sorted
    # positions) — no per-round re-sort of the whole accumulated set.
    positions = np.searchsorted(state, key)
    found = np.zeros(len(key), dtype=bool)
    in_bounds = positions < len(state)
    found[in_bounds] = state[positions[in_bounds]] == key[in_bounds]
    mask = ~found
    delta = NpTable([column[mask] for column in table.cols], int(mask.sum()))
    fresh = np.sort(key[mask])
    state = np.insert(state, np.searchsorted(state, fresh), fresh)
    return delta, state
