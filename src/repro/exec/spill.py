"""Memmap spill of encoded columns — out-of-core vec execution.

A :class:`SpillManager` owns one session-scoped spill directory and
rewrites integer-code columns into flat little-endian int64 files that
are handed back as ``numpy.memmap`` views. Kernel tables built over
those views behave exactly like in-RAM tables (a memmap is an ndarray
subclass), but their resident footprint is whatever the OS page cache
decides — which is why the executor does *not* charge spilled tables
against a :class:`~repro.graph.evaluator.ResourceBudget`'s ``max_bytes``
ceiling: the cap governs materialised RAM, spill trades it for disk.

Two spill shapes:

* **named base tables** — keyed ``(table name, encoding version)`` so a
  repeat execution at the same store version reuses the file instead of
  rewriting it; a version move (append delta or barrier rebuild)
  invalidates the stale file on next spill of that table;
* **anonymous intermediates** — written, mapped, then immediately
  unlinked (POSIX keeps the mapping alive), so operator outputs spilled
  mid-query free their disk space the moment the last table referencing
  them is garbage collected. No leak is possible even on a crashed run.

Spilling is numpy-only (``kernel.SUPPORTS_MEMMAP``): the pure-Python
kernel copies columns into plain lists on construction, so a memmap
buys it nothing — spill degrades to a no-op there and results stay
identical, which the property suite checks.

Fault sites: ``spill.write`` fires before a file is written and is
*contained* (callers keep the table in RAM instead); ``spill.read``
fires before a named file is reused and *raises* (retryable — the next
attempt rewrites the file).

Environment defaults (the CLI flags and ``ExecOptions`` fields override
them): ``REPRO_SPILL_PATH`` roots the spill directories,
``REPRO_SPILL_THRESHOLD_BYTES`` turns spilling on for any table whose
estimated encoded size exceeds it, and ``REPRO_SHARD_WORKERS`` is the
multi-process morsel fan-out consumed by :mod:`repro.exec.shard`.
"""

from __future__ import annotations

import os
import shutil
import tempfile
import threading

from repro.testing.faults import fault_point

try:  # pragma: no cover - exercised via whichever kernel is active
    import numpy as _np
except ImportError:  # pragma: no cover - numpy genuinely absent
    _np = None  # type: ignore[assignment]

SPILL_PATH_ENV = "REPRO_SPILL_PATH"
SPILL_THRESHOLD_ENV = "REPRO_SPILL_THRESHOLD_BYTES"
SHARD_WORKERS_ENV = "REPRO_SHARD_WORKERS"

_INT_BYTES = 8


def default_spill_path() -> str | None:
    """The spill-directory root implied by ``REPRO_SPILL_PATH``."""
    raw = os.environ.get(SPILL_PATH_ENV, "").strip()
    return raw or None


def default_spill_threshold() -> int | None:
    """Bytes above which tables spill (``REPRO_SPILL_THRESHOLD_BYTES``).

    ``None`` (spilling off) when unset, empty, non-numeric or < 1.
    """
    raw = os.environ.get(SPILL_THRESHOLD_ENV, "").strip()
    try:
        value = int(raw)
    except ValueError:
        return None
    return value if value >= 1 else None


def default_shard_workers() -> int:
    """Worker processes implied by ``REPRO_SHARD_WORKERS`` (min 1)."""
    raw = os.environ.get(SHARD_WORKERS_ENV, "")
    try:
        value = int(raw)
    except ValueError:
        return 1
    return max(value, 1)


def spill_supported(kernel) -> bool:
    """Whether ``kernel``'s tables can be backed by memmap columns."""
    return _np is not None and getattr(kernel, "SUPPORTS_MEMMAP", False)


def is_spilled(table) -> bool:
    """Whether every column of a kernel table is disk-backed.

    Column gathers and row slices of a spilled table stay memmap views
    (no new RAM), so they count as spilled too; any operator that
    materialises fresh arrays (joins, dedup, concat) drops the property
    and its output is charged against the budget normally.
    """
    if _np is None:
        return False
    cols = getattr(table, "cols", None)
    if not cols:
        return False
    return all(isinstance(column, _np.memmap) for column in cols)


class SpillManager:
    """Owns one spill directory; writes columns, hands back memmaps.

    ``spilled_bytes``/``spill_ops`` count what was actually written
    (reuse of a named file is free); ``spill_reuses`` counts the hits.
    Thread-safe: morsel workers may spill concurrently.
    """

    def __init__(self, path: str | None = None):
        root = path or default_spill_path()
        if root:
            os.makedirs(root, exist_ok=True)
        self.directory = tempfile.mkdtemp(prefix="repro-spill-", dir=root or None)
        self.spilled_bytes = 0
        self.spill_ops = 0
        self.spill_reuses = 0
        self.closed = False
        self._lock = threading.Lock()
        self._sequence = 0
        #: Named spill files: table name -> (version, path, ncols, nrows).
        self._named: dict[str, tuple[int, str, int, int]] = {}

    # -- paths -------------------------------------------------------------
    def _next_path(self, tag: str) -> str:
        with self._lock:
            self._sequence += 1
            sequence = self._sequence
        safe = "".join(c if c.isalnum() or c in "-_." else "_" for c in tag)
        return os.path.join(self.directory, f"{safe}-{sequence:06d}.bin")

    def files(self) -> list[str]:
        """The spill files currently on disk (lifecycle tests)."""
        if self.closed or not os.path.isdir(self.directory):
            return []
        return sorted(
            os.path.join(self.directory, name)
            for name in os.listdir(self.directory)
        )

    # -- writing -----------------------------------------------------------
    def _write(self, path: str, columns, nrows: int) -> None:
        fault_point("spill.write")
        with open(path, "wb") as handle:
            for column in columns:
                _np.asarray(column, dtype=_np.int64).tofile(handle)
        with self._lock:
            self.spill_ops += 1
            self.spilled_bytes += len(columns) * nrows * _INT_BYTES

    def _map(self, path: str, ncols: int, nrows: int):
        return _np.memmap(path, dtype=_np.int64, mode="r", shape=(ncols, nrows))

    def spill_table(self, name: str, version: int, columns, nrows: int):
        """Spill (or reuse) a named base table; returns the 2D memmap.

        A cached file at the same ``version`` is remapped without a
        write; a cached file at any *other* version (append delta or
        barrier rebuild moved the encoding) is deleted and rewritten —
        the invalidation half of the lifecycle contract.
        """
        if self.closed:
            raise RuntimeError("spill manager is closed")
        ncols = len(columns)
        entry = self._named.get(name)
        if entry is not None:
            cached_version, path, cached_cols, cached_rows = entry
            if (
                cached_version == version
                and cached_cols == ncols
                and cached_rows == nrows
            ):
                fault_point("spill.read")
                with self._lock:
                    self.spill_reuses += 1
                return self._map(path, ncols, nrows)
            self._named.pop(name, None)
            try:
                os.unlink(path)
            except OSError:  # pragma: no cover - already gone
                pass
        path = self._next_path(f"table-{name}-v{version}")
        self._write(path, columns, nrows)
        self._named[name] = (version, path, ncols, nrows)
        return self._map(path, ncols, nrows)

    def spill_anonymous(self, tag: str, columns, nrows: int):
        """Spill an intermediate; the file is unlinked once mapped.

        POSIX keeps the mapping valid after the unlink, so the disk
        space is reclaimed automatically when the returned memmap (and
        every view of it) is garbage collected — intermediates need no
        explicit lifecycle at all.
        """
        if self.closed:
            raise RuntimeError("spill manager is closed")
        path = self._next_path(tag)
        self._write(path, columns, nrows)
        mapped = self._map(path, len(columns), nrows)
        try:
            os.unlink(path)
        except OSError:  # pragma: no cover - e.g. non-POSIX filesystem
            pass
        return mapped

    # -- lifecycle ---------------------------------------------------------
    def close(self) -> None:
        """Delete the spill directory and everything in it."""
        if self.closed:
            return
        self.closed = True
        self._named.clear()
        shutil.rmtree(self.directory, ignore_errors=True)

    def __enter__(self) -> "SpillManager":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


def table_from_memmap(kernel, mapped, nrows: int):
    """A kernel table over the rows of a 2D column-major memmap.

    Built directly (not through ``kernel.from_columns``, whose
    ``np.asarray`` would strip the ``memmap`` type the budget exemption
    keys on) — each table column is one zero-copy row view of the map.
    """
    from repro.exec.kernels_numpy import NpTable

    return NpTable([mapped[i] for i in range(mapped.shape[0])], nrows)


def spill_kernel_table(manager: SpillManager, kernel, table, tag: str):
    """Rewrite an in-RAM kernel table onto disk; ``None`` if ineligible.

    Only memmap-capable kernels spill; empty tables are never worth a
    file. The caller decides *whether* to spill (threshold policy) —
    this helper only performs the rewrite.
    """
    if not spill_supported(kernel):
        return None
    cols = getattr(table, "cols", None)
    n = getattr(table, "n", 0)
    if not cols or n == 0:
        return None
    mapped = manager.spill_anonymous(tag, cols, n)
    return table_from_memmap(kernel, mapped, n)
