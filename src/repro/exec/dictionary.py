"""Dictionary encoding of store values into dense integer ids.

Columnar operators work on integer codes only: every node id, string and
property constant in a :class:`~repro.storage.relational.RelationalStore`
is interned into one store-wide :class:`ValueDictionary` (store-wide, not
per-column, so natural-join key columns from different tables share a code
space and joins compare raw integers).

Encodings are *append-only*: :func:`encoding_for` caches one
:class:`StoreEncoding` per store; when the store's ``version`` counter
moves across an append-only write
(:meth:`~repro.storage.relational.RelationalStore.delta_since`), the
delta rows are encoded into the existing snapshot — existing codes
survive, new constants get fresh codes, and the cost is O(delta), not
O(store). Only barrier writes (new tables, replacements, or
``REPRO_INCREMENTAL=0``) rebuild the snapshot. Individual tables are
encoded lazily on first scan and the encoded columns are additionally
cached per kernel, so repeated executions touch no Python-object hashing
at all.
"""

from __future__ import annotations

import weakref
from weakref import WeakKeyDictionary

from repro.storage.relational import RelationalStore


class ValueDictionary:
    """Bidirectional mapping between values and dense integer codes.

    Codes are assigned in first-seen order starting at 0; ``decode`` is a
    plain list index. Values must be hashable (node ids, strings, numbers
    and ``None`` — everything a store row can hold).
    """

    __slots__ = ("_codes", "_values")

    def __init__(self) -> None:
        self._codes: dict = {}
        self._values: list = []

    def __len__(self) -> int:
        return len(self._values)

    def encode(self, value) -> int:
        """Return the code for ``value``, interning it if new."""
        code = self._codes.get(value)
        if code is None:
            code = len(self._values)
            self._codes[value] = code
            self._values.append(value)
        return code

    def lookup(self, value) -> int | None:
        """The code for ``value`` if already interned, else None."""
        return self._codes.get(value)

    def decode(self, code: int):
        return self._values[code]

    def decode_row(self, row) -> tuple:
        values = self._values
        return tuple(values[code] for code in row)


class EncodedTable:
    """One store table as columns of integer codes."""

    __slots__ = ("name", "columns", "codes", "nrows", "_kernel_tables")

    def __init__(
        self,
        name: str,
        columns: tuple[str, ...],
        codes: list[list[int]],
        nrows: int,
    ):
        self.name = name
        self.columns = columns
        self.codes = codes
        self.nrows = nrows
        self._kernel_tables: dict[str, object] = {}

    def kernel_table(self, kernel):
        """The kernel-native column container (cached per kernel)."""
        table = self._kernel_tables.get(kernel.NAME)
        if table is None:
            table = kernel.from_columns(self.codes, self.nrows)
            self._kernel_tables[kernel.NAME] = table
        return table

    def spilled_kernel_table(self, kernel, manager, version: int):
        """A memmap-backed kernel table (cached per kernel, like above).

        The spill file is keyed ``(table name, version)`` inside the
        manager, so repeat executions at the same store version reuse
        one file and a version move (append delta — which also clears
        this cache — or barrier rebuild) rewrites it. Falls back to the
        in-RAM table on kernels without memmap support.
        """
        from repro.exec.spill import spill_supported, table_from_memmap

        if not spill_supported(kernel):
            return self.kernel_table(kernel)
        key = f"{kernel.NAME}@spill"
        table = self._kernel_tables.get(key)
        if table is None:
            mapped = manager.spill_table(
                self.name, version, self.codes, self.nrows
            )
            table = table_from_memmap(kernel, mapped, self.nrows)
            self._kernel_tables[key] = table
        return table


class StoreEncoding:
    """Dictionary-encoded snapshot of one relational store."""

    def __init__(self, store: RelationalStore):
        # Weak, so the cache entry in ``_ENCODINGS`` (whose value this
        # snapshot is) cannot pin its own key alive forever.
        self._store_ref = weakref.ref(store)
        self.version = store.version
        self.dictionary = ValueDictionary()
        self._tables: dict[str, EncodedTable] = {}
        #: Cumulative rows folded in by :meth:`apply_delta` (the
        #: ``encoding_appends`` maintenance counter).
        self.appended_rows = 0

    @property
    def store(self) -> RelationalStore:
        store = self._store_ref()
        if store is None:  # pragma: no cover - caller always holds the store
            raise ReferenceError("the encoded store no longer exists")
        return store

    def table(self, name: str) -> EncodedTable:
        """Encode (once) and return the named table or alias view."""
        encoded = self._tables.get(name)
        if encoded is None:
            table = self.store.table(name)
            encode = self.dictionary.encode
            codes: list[list[int]] = [[] for _ in table.columns]
            for row in table.rows:
                for position, value in enumerate(row):
                    codes[position].append(encode(value))
            encoded = EncodedTable(
                name, table.columns, codes, table.row_count
            )
            self._tables[name] = encoded
        return encoded

    def apply_delta(
        self, deltas: dict[str, frozenset], version: int
    ) -> None:
        """Fold an append-only store delta into this snapshot in place.

        Already-encoded tables get the delta rows appended column-wise
        (new constants are interned, existing codes are untouched);
        tables not yet encoded stay lazy and will read the full current
        contents on first scan. Per-kernel column caches of the changed
        tables are dropped — they rebuild from the appended code lists.
        """
        encode = self.dictionary.encode
        for name, rows in deltas.items():
            encoded = self._tables.get(name)
            if encoded is None:
                continue  # still lazy: first scan encodes the new rows too
            codes = encoded.codes
            for row in rows:
                for position, value in enumerate(row):
                    codes[position].append(encode(value))
            encoded.nrows += len(rows)
            encoded._kernel_tables.clear()
            self.appended_rows += len(rows)
        self.version = version

    @property
    def domain_size(self) -> int:
        """Number of interned values (the base for key packing)."""
        return max(len(self.dictionary), 1)

    @property
    def tables_encoded(self) -> int:
        """How many tables this snapshot has actually encoded.

        Encoding is lazy per table (:meth:`table` runs on first scan
        only), so a query touching a 2-table slice of a 50-table schema
        keeps this at 2 — the ``tables_encoded`` cache counter asserts
        exactly that.
        """
        return len(self._tables)


_ENCODINGS: "WeakKeyDictionary[RelationalStore, StoreEncoding]" = (
    WeakKeyDictionary()
)


def encoding_for(store: RelationalStore) -> StoreEncoding:
    """The cached encoding for ``store``, maintained across appends.

    A version mismatch is first reconciled through
    :meth:`RelationalStore.delta_since`: append-only writes are folded
    into the existing snapshot (codes survive, cost O(delta)); barrier
    writes — or disabled incremental maintenance — rebuild from scratch.
    """
    encoding = _ENCODINGS.get(store)
    if encoding is None or encoding.version != store.version:
        deltas = (
            None if encoding is None else store.delta_since(encoding.version)
        )
        if deltas is not None:
            encoding.apply_delta(deltas, store.version)
        else:
            encoding = StoreEncoding(store)
            _ENCODINGS[store] = encoding
    return encoding


def encoding_appends(store: RelationalStore) -> int:
    """Rows folded into ``store``'s live encoding by append-only deltas
    (0 when no encoding exists yet)."""
    encoding = _ENCODINGS.get(store)
    return encoding.appended_rows if encoding is not None else 0


def tables_encoded(store: RelationalStore) -> int:
    """Tables ``store``'s live encoding has actually materialised
    (0 when no encoding exists yet) — the lazy-encoding counter."""
    encoding = _ENCODINGS.get(store)
    return encoding.tables_encoded if encoding is not None else 0
