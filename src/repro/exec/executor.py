"""Execute compiled columnar programs against an encoded store.

Evaluation is batch-at-a-time: every operator consumes and produces whole
tables of integer-code columns through one of the
:mod:`repro.exec.kernels` implementations. Fixpoints run semi-naive
iteration over *delta frontiers* — each round binds the recursion
variable to only the rows discovered in the previous round and the
round's output is set-differenced against the accumulated state with one
vectorized membership test (falling back to naive iteration for
non-linear steps, exactly like the interpreter).

All base tables referenced by the program are dictionary-encoded up
front, so the value-id space is frozen for the whole execution — packed
multi-column keys stay stable across fixpoint rounds.

The executor honours the same cooperative
:class:`~repro.graph.evaluator.EvalBudget` as the other engines.

Batch execution (:func:`execute_batch_programs`) runs several compiled
programs through *one* runner: the scan manifest of the whole batch is
dictionary-encoded up front against a single frozen code domain, and the
closed-operator memo spans every program — because the compiler hands
equal closed subtrees the same operator node, a fixpoint or join shared
by many queries in the batch is materialised exactly once.

With ``parallelism`` > 1 the runner drives a
:class:`~repro.exec.parallel.MorselKernel`: hash-join probes, dedup and
selections fan out over fixed-size row morsels on a shared thread pool
(numpy kernels release the GIL on large arrays; the pure-Python kernel
falls back to sequential execution behind the same surface). With
``shard_workers`` > 1 the same operators fan out over worker
*processes* instead (:mod:`repro.exec.shard`) — real parallelism for
the GIL-bound kernel, morsels shipped zero-copy via spill files.

With ``spill_threshold_bytes`` set (and a memmap-capable kernel), base
tables and operator outputs whose estimated encoded size exceeds the
threshold are rewritten onto disk (:mod:`repro.exec.spill`) and the
execution proceeds over ``np.memmap`` views. Spilled tables are *not*
charged against the budget's ``max_bytes`` ceiling — the cap governs
materialised RAM, spilling trades it for disk — which is what lets a
graph larger than the cap complete out-of-core while the same query
in-memory exhausts the budget.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, fields

from repro.errors import EvaluationError, InjectedFault
from repro.exec.compile import (
    CompiledProgram,
    FixOp,
    JoinOp,
    PhysOp,
    ProjectOp,
    RenameOp,
    ScanOp,
    SelectEqOp,
    UnionOp,
    VarOp,
)
from repro.exec.dictionary import StoreEncoding, encoding_for
from repro.exec.kernels import default_kernel
from repro.exec.parallel import MorselKernel
from repro.exec.spill import (
    SpillManager,
    is_spilled,
    spill_kernel_table,
    spill_supported,
)
from repro.graph.evaluator import EvalBudget
from repro.testing.faults import fault_point
from repro.storage.relational import RelationalStore

_NO_BUDGET = EvalBudget(None)

#: Sentinel keys a fix-capture dict carries alongside its Fix-term keys:
#: the head-ordered root output table and the kernel that produced every
#: captured table (states from one kernel must not seed another).
CAPTURE_OUTPUT = "__output__"
CAPTURE_KERNEL = "__kernel__"


@dataclass
class ExecutionStats:
    """Operator-level counters for one (batch) execution.

    ``memo_hits`` counts closed operators whose materialised result was
    served from the shared memo instead of being recomputed — within one
    program (shared subtrees) and, for batch execution, across programs.
    ``parallel_ops``/``morsels_dispatched`` describe the morsel-driven
    fan-outs of a parallel run (zero on sequential or GIL-bound runs);
    ``result_cache_hits``/``result_cache_misses`` count whole queries the
    serving layer answered from (or had to add to) the result-set cache.

    The ``results_maintained``/``results_invalidated`` pair counts how
    stale result-cache entries were handled after store writes —
    incrementally maintained from the append delta vs evicted and
    recomputed. ``delta_rows_applied`` counts the delta rows folded into
    maintained results, and ``encoding_appends`` the rows appended to
    the store's dictionary encoding instead of triggering a rebuild.

    The ``*_rows`` counters are **actual cardinalities** per operator
    kind, counted as each operator materialises its output — the
    feedback signal of the adaptive cost planner (fixpoint total vs base
    rows corrects the growth assumption). ``estimated_rows`` /
    ``actual_rows`` carry the planner's root-level estimate next to the
    observed result size; :attr:`cardinality_error` is their ratio.

    The ``*_seconds`` counters are **exclusive** wall-clock time per
    operator kind — each operator's evaluation time minus the time its
    children spent, so the per-kind totals sum to (at most) the whole
    execution. They are the measurements
    :func:`repro.planner.calibration.fit_profile` regresses per-row
    operator weights from.
    """

    programs: int = 0
    ops_evaluated: int = 0
    memo_hits: int = 0
    parallel_ops: int = 0
    morsels_dispatched: int = 0
    # Out-of-core counters: bytes/files actually written to spill during
    # this execution, worker-process shards dispatched, tables the lazy
    # store encoding has materialised, and the planner's peak-memory
    # estimate for the chosen plan (max-merged, not summed).
    spilled_bytes: int = 0
    spill_ops: int = 0
    shards_dispatched: int = 0
    tables_encoded: int = 0
    peak_estimate_bytes: float = 0.0
    result_cache_hits: int = 0
    result_cache_misses: int = 0
    delta_rows_applied: int = 0
    results_maintained: int = 0
    results_invalidated: int = 0
    encoding_appends: int = 0
    scan_rows: int = 0
    join_rows: int = 0
    union_rows: int = 0
    select_rows: int = 0
    project_rows: int = 0
    fixpoint_base_rows: int = 0
    fixpoint_rows: int = 0
    scan_seconds: float = 0.0
    join_seconds: float = 0.0
    union_seconds: float = 0.0
    select_seconds: float = 0.0
    project_seconds: float = 0.0
    fixpoint_seconds: float = 0.0
    estimated_rows: float = 0.0
    actual_rows: int = 0
    # Resilience counters, stamped by the session's degradation loop:
    # extra execution attempts after a retryable failure, executions
    # answered by a backend other than the planned one, and circuit
    # breakers newly tripped open along the way.
    retries: int = 0
    degraded: int = 0
    breaker_opens: int = 0

    def operator_rows(self) -> dict[str, int]:
        """Actual output rows by operator kind (calibration features)."""
        return {
            "scan": self.scan_rows,
            "join": self.join_rows,
            "union": self.union_rows,
            "select": self.select_rows,
            "project": self.project_rows,
            "fixpoint": self.fixpoint_rows,
        }

    def operator_seconds(self) -> dict[str, float]:
        """Exclusive wall-clock seconds by operator kind."""
        return {
            "scan": self.scan_seconds,
            "join": self.join_seconds,
            "union": self.union_seconds,
            "select": self.select_seconds,
            "project": self.project_seconds,
            "fixpoint": self.fixpoint_seconds,
        }

    @property
    def cardinality_error(self) -> float:
        """Estimated-vs-actual root cardinality error factor.

        ``max(estimated, actual) / min(estimated, actual)`` with both
        sides floored at one row; 0.0 when no estimate was recorded
        (greedy executions do not carry one).
        """
        if self.estimated_rows <= 0.0:
            return 0.0
        estimated = max(self.estimated_rows, 1.0)
        actual = max(float(self.actual_rows), 1.0)
        return max(estimated, actual) / min(estimated, actual)

    @property
    def observed_fixpoint_growth(self) -> float | None:
        """Actual total/base row ratio over every fixpoint evaluated."""
        if self.fixpoint_base_rows <= 0:
            return None
        return self.fixpoint_rows / self.fixpoint_base_rows

    def merge(self, other: "ExecutionStats") -> None:
        # Total over every counter field: a counter added to this class
        # is merged automatically instead of being silently dropped. The
        # peak-memory estimate is a high-water mark, not a total.
        for field_ in fields(self):
            if field_.name == "peak_estimate_bytes":
                self.peak_estimate_bytes = max(
                    self.peak_estimate_bytes, other.peak_estimate_bytes
                )
                continue
            setattr(
                self,
                field_.name,
                getattr(self, field_.name) + getattr(other, field_.name),
            )


def execute_program(
    program: CompiledProgram,
    store: RelationalStore,
    head: tuple[str, ...] | None = None,
    budget: EvalBudget | None = None,
    kernel=None,
    parallelism: int | None = None,
    morsel_size: int | None = None,
    stats: ExecutionStats | None = None,
    fix_capture: dict | None = None,
    spill_threshold_bytes: int | None = None,
    spill_path: str | None = None,
    spill_manager: SpillManager | None = None,
    shard_workers: int | None = None,
) -> frozenset[tuple]:
    """Run ``program`` on ``store``; returns decoded, head-ordered rows."""
    return execute_batch_programs(
        [program],
        store,
        heads=[head],
        budget=budget,
        kernel=kernel,
        parallelism=parallelism,
        morsel_size=morsel_size,
        stats=stats,
        fix_captures=None if fix_capture is None else [fix_capture],
        spill_threshold_bytes=spill_threshold_bytes,
        spill_path=spill_path,
        spill_manager=spill_manager,
        shard_workers=shard_workers,
    )[0]


class _SpillState:
    """The per-execution spill policy: a manager plus the byte threshold.

    ``owns`` marks an ephemeral manager created for this execution only
    (closed in the run's ``finally``); a session-provided manager
    outlives the run so named base-table spills are reused across
    executions at the same store version. Counter baselines let the run
    report only its *own* writes even through a shared manager.
    """

    __slots__ = ("manager", "threshold", "owns", "base_bytes", "base_ops")

    def __init__(self, manager: SpillManager, threshold: int, owns: bool):
        self.manager = manager
        self.threshold = threshold
        self.owns = owns
        self.base_bytes = manager.spilled_bytes
        self.base_ops = manager.spill_ops


def execute_batch_programs(
    programs,
    store: RelationalStore,
    heads=None,
    budget: EvalBudget | None = None,
    kernel=None,
    stats: ExecutionStats | None = None,
    parallelism: int | None = None,
    morsel_size: int | None = None,
    fix_captures: list | None = None,
    spill_threshold_bytes: int | None = None,
    spill_path: str | None = None,
    spill_manager: SpillManager | None = None,
    shard_workers: int | None = None,
) -> list[frozenset[tuple]]:
    """Run several compiled programs with shared encoding and shared memo.

    ``heads[i]`` optionally reorders program ``i``'s output columns. The
    programs should come from one store snapshot's compiler (the default:
    :func:`~repro.exec.compile.compile_term` caches per store version) so
    their equal closed subtrees are the *same* operator nodes; the
    runner's memo then materialises each shared node once for the whole
    batch. ``stats``, when given, accumulates operator counters.

    ``parallelism`` > 1 runs the heavy kernel operators morsel-parallel
    over a thread pool (:mod:`repro.exec.parallel`); ``morsel_size``
    tunes the rows-per-task granularity. Both are no-ops on kernels that
    hold the GIL — results are identical in every configuration.

    ``fix_captures[i]``, when a dict, receives, for every *closed*
    fixpoint in program ``i`` keyed by its source
    :class:`~repro.ra.terms.Fix` term, a ``(total, state, domain)``
    triple — the materialised total as a kernel-native coded table, the
    membership state iteration converged with, and the packing domain
    that state was built at — plus the head-ordered root output table
    under :data:`CAPTURE_OUTPUT` and the kernel name under
    :data:`CAPTURE_KERNEL`. These are what the result cache stores so a
    later write can continue semi-naive iteration instead of
    recomputing. Capturing is O(1) per fixpoint: the tables are the
    runner's own materialisations, shared not copied.

    ``spill_threshold_bytes`` turns on out-of-core execution on
    memmap-capable kernels: base tables and operator outputs estimated
    above the threshold are rewritten under a spill directory
    (``spill_manager`` when given — typically the session's, so named
    files are reused across executions — else an ephemeral one rooted
    at ``spill_path``). ``shard_workers`` > 1 replaces the thread-morsel
    wrapper with the multi-process one (:mod:`repro.exec.shard`).
    """
    kernel = kernel or default_kernel()
    spill: _SpillState | None = None
    if (
        spill_threshold_bytes is not None
        and spill_threshold_bytes >= 1
        and spill_supported(kernel)
    ):
        if spill_manager is not None and not spill_manager.closed:
            spill = _SpillState(spill_manager, spill_threshold_bytes, False)
        else:
            spill = _SpillState(
                SpillManager(spill_path), spill_threshold_bytes, True
            )
    morsel: MorselKernel | None = None
    if shard_workers is not None and shard_workers > 1:
        from repro.exec.shard import ProcessMorselKernel

        morsel = ProcessMorselKernel(
            kernel,
            shard_workers,
            morsel_size,
            budget=budget,
            manager=spill.manager if spill is not None else None,
        )
        kernel = morsel
    elif parallelism is not None and parallelism > 1:
        morsel = MorselKernel(kernel, parallelism, morsel_size, budget=budget)
        kernel = morsel
    encoding = encoding_for(store)
    programs = list(programs)
    heads = list(heads) if heads is not None else [None] * len(programs)
    if len(heads) != len(programs):
        raise ValueError(
            f"{len(programs)} program(s) but {len(heads)} head(s)"
        )
    try:
        runner = _Runner(
            programs, encoding, kernel, budget or _NO_BUDGET, spill=spill
        )
        decode_row = encoding.dictionary.decode_row
        results: list[frozenset[tuple]] = []
        if fix_captures is None:
            fix_captures = [None] * len(programs)
        for program, head, capture in zip(programs, heads, fix_captures):
            table = runner.run(program)
            columns = program.columns
            if head is not None and head != columns:
                table = kernel.select_columns(
                    table, [columns.index(column) for column in head]
                )
            results.append(
                frozenset(decode_row(row) for row in kernel.to_rows(table))
            )
            if capture is None:
                continue
            capture[CAPTURE_KERNEL] = getattr(kernel, "NAME", None)
            capture[CAPTURE_OUTPUT] = table
            for op in program.root.walk():
                if (
                    isinstance(op, FixOp)
                    and op.closed
                    and op.source is not None
                    and id(op) in runner._memo
                ):
                    capture[op.source] = (
                        runner._memo[id(op)],
                        runner.fix_final_states.get(id(op)),
                        runner.domain,
                    )
    finally:
        if morsel is not None:
            morsel.close()
        if spill is not None and spill.owns:
            spill.manager.close()
    if stats is not None:
        if morsel is not None:
            runner.stats.parallel_ops = morsel.parallel_ops
            runner.stats.morsels_dispatched = morsel.morsels_dispatched
            runner.stats.shards_dispatched = getattr(
                morsel, "shards_dispatched", 0
            )
        if spill is not None:
            runner.stats.spilled_bytes = (
                spill.manager.spilled_bytes - spill.base_bytes
            )
            runner.stats.spill_ops = spill.manager.spill_ops - spill.base_ops
        stats.merge(runner.stats)
    return results


class _Runner:
    def __init__(
        self,
        programs,
        encoding: StoreEncoding,
        kernel,
        budget: EvalBudget,
        spill: _SpillState | None = None,
    ):
        self.encoding = encoding
        self.kernel = kernel
        self.budget = budget
        self.spill = spill
        self.stats = ExecutionStats(programs=len(programs))
        self._memo: dict[int, object] = {}
        # Stack of accumulated child-evaluation seconds, one slot per
        # in-flight _eval frame: exclusive per-operator time is the
        # frame's elapsed wall clock minus what its children consumed.
        self._child_seconds: list[float] = []
        #: id(FixOp) -> the membership state its iteration converged
        #: with, kept so fix captures can store (total, state, domain)
        #: and a later maintenance run can resume without re-sorting
        #: the whole total back into a state.
        self.fix_final_states: dict[int, object] = {}
        # Encode every table referenced anywhere in the batch before
        # executing: operators never intern new values, so the packing
        # domain is fixed from here on — across all programs.
        for program in programs:
            for name in program.scan_tables:
                encoding.table(name)
        self.domain = encoding.domain_size

    def run(self, program: CompiledProgram):
        return self._eval(program.root, {})

    def _scan_table(self, name: str):
        """The kernel table for one base-table scan, spilled when big.

        A ``spill.write`` fault (or real I/O error) is contained — the
        scan falls back to the in-RAM columns; a ``spill.read`` fault
        (stale named file reuse) raises, since a lost spill file aborts
        the execution as retryable.
        """
        encoded = self.encoding.table(name)
        spill = self.spill
        if spill is not None:
            estimated = encoded.nrows * max(len(encoded.columns), 1) * 8
            if estimated > spill.threshold:
                try:
                    return encoded.spilled_kernel_table(
                        self.kernel, spill.manager, self.encoding.version
                    )
                except InjectedFault as fault:
                    if fault.site != "spill.write":
                        raise
                except OSError:
                    pass
        return encoded.kernel_table(self.kernel)

    def _eval(self, op: PhysOp, env: dict):
        if op.closed:
            hit = self._memo.get(id(op))
            if hit is not None:
                self.stats.memo_hits += 1
                return hit
        fault_point("kernel.op")
        started = time.perf_counter()
        self._child_seconds.append(0.0)
        try:
            result = self._eval_uncached(op, env)
        finally:
            child = self._child_seconds.pop()
        elapsed = time.perf_counter() - started
        if self._child_seconds:
            self._child_seconds[-1] += elapsed
        exclusive = max(elapsed - child, 0.0)
        self.stats.ops_evaluated += 1
        rows = self.kernel.nrows(result)
        # Actual cardinalities and exclusive timings per operator kind:
        # the feedback the adaptive planner compares against its
        # estimates, and the measurements profile calibration fits.
        stats = self.stats
        if isinstance(op, ScanOp):
            stats.scan_rows += rows
            stats.scan_seconds += exclusive
        elif isinstance(op, JoinOp):
            stats.join_rows += rows
            stats.join_seconds += exclusive
        elif isinstance(op, UnionOp):
            stats.union_rows += rows
            stats.union_seconds += exclusive
        elif isinstance(op, SelectEqOp):
            stats.select_rows += rows
            stats.select_seconds += exclusive
        elif isinstance(op, ProjectOp):
            stats.project_rows += rows
            stats.project_seconds += exclusive
        elif isinstance(op, FixOp):
            stats.fixpoint_rows += rows
            stats.fixpoint_seconds += exclusive
        self.budget.tick(rows)
        # Approximate bytes of this materialised intermediate: every
        # encoded column is one int64 code per row. Disk-backed tables
        # (already spilled, or rewritten to spill just below) are not
        # charged — ``max_bytes`` caps materialised RAM and spilling is
        # exactly the trade of that RAM for disk.
        approx_bytes = rows * max(self.kernel.width(result), 1) * 8
        spill = self.spill
        if spill is not None and is_spilled(result):
            pass
        elif spill is not None and approx_bytes > spill.threshold:
            spilled = self._spill_result(op, result)
            if spilled is not None:
                result = spilled
            else:
                self.budget.charge_bytes(approx_bytes)
        else:
            self.budget.charge_bytes(approx_bytes)
        if op.closed:
            self._memo[id(op)] = result
        return result

    def _spill_result(self, op: PhysOp, result):
        """Rewrite one oversized operator output onto disk.

        ``spill.write`` faults (and real I/O errors) are contained: the
        caller keeps the in-RAM table and charges the budget normally.
        Returns ``None`` when the rewrite did not happen.
        """
        try:
            return spill_kernel_table(
                self.spill.manager,
                self.kernel,
                result,
                type(op).__name__.lower(),
            )
        except InjectedFault as fault:
            if fault.site != "spill.write":
                raise
            return None
        except OSError:
            return None

    def _eval_uncached(self, op: PhysOp, env: dict):
        kernel = self.kernel
        if isinstance(op, ScanOp):
            table = self._scan_table(op.table)
            if op.indices is not None:
                table = kernel.select_columns(table, op.indices)
                if op.dedup:
                    table = kernel.distinct(table, self.domain)
            return table
        if isinstance(op, VarOp):
            bound = env.get(op.name)
            if bound is None:
                raise EvaluationError(
                    f"unbound recursion variable {op.name!r}"
                )
            return bound
        if isinstance(op, ProjectOp):
            table = kernel.select_columns(
                self._eval(op.child, env), op.indices
            )
            if op.dedup:
                table = kernel.distinct(table, self.domain)
            return table
        if isinstance(op, RenameOp):
            return self._eval(op.child, env)
        if isinstance(op, SelectEqOp):
            return kernel.select_eq(
                self._eval(op.child, env), op.index_a, op.index_b
            )
        if isinstance(op, JoinOp):
            return kernel.join(
                self._eval(op.left, env),
                self._eval(op.right, env),
                op.left_key,
                op.right_key,
                op.layout,
                self.domain,
            )
        if isinstance(op, UnionOp):
            left = self._eval(op.left, env)
            right = self._eval(op.right, env)
            if op.right_perm is not None:
                right = kernel.select_columns(right, op.right_perm)
            return kernel.distinct(kernel.concat(left, right), self.domain)
        if isinstance(op, FixOp):
            return self._eval_fixpoint(op, env)
        raise EvaluationError(f"unknown physical operator {op!r}")

    def _step(self, op: FixOp, env: dict, frontier):
        step_env = dict(env)
        step_env[op.var] = frontier
        produced = self._eval(op.step, step_env)
        if op.step_perm is not None:
            produced = self.kernel.select_columns(produced, op.step_perm)
        return produced

    def _eval_fixpoint(self, op: FixOp, env: dict):
        kernel = self.kernel
        base = self._eval(op.base, env)
        self.stats.fixpoint_base_rows += kernel.nrows(base)
        state = kernel.empty_state()
        delta, state = kernel.difference(base, state, self.domain)
        return self._iterate_fixpoint(op, env, state, delta, delta)

    def _iterate_fixpoint(self, op: FixOp, env: dict, state, total, delta):
        """Semi-naive iteration from an arbitrary sound starting point.

        ``state`` must already contain ``total`` and ``delta`` must be
        the current frontier (rows of ``total`` not yet fed to the
        step). Shared with the incremental maintenance runner, which
        seeds ``total`` with a previously materialised fixpoint and
        ``delta`` with the frontier derived from a store append.
        """
        kernel = self.kernel
        while kernel.nrows(delta):
            self.budget.check_now()
            # Semi-naive: only the frontier feeds a linear step; a
            # non-linear step must see the whole accumulated relation.
            produced = self._step(op, env, delta if op.linear else total)
            delta, state = kernel.difference(produced, state, self.domain)
            total = kernel.concat(total, delta)
        self.fix_final_states[id(op)] = state
        return total
