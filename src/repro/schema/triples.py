"""Graph schema triples (paper Def. 5 and Def. 6).

A *basic* graph schema triple ``(ln, le, l'n)`` records that the schema has
an ``le``-labelled edge from an ``ln``-labelled node to an ``l'n``-labelled
node. General schema triples ``(ln, ψ, l'n)`` carry an annotated path
expression instead of a single label; the inference engine
(:mod:`repro.core.inference`) computes the set of triples compatible with a
path expression.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.algebra.ast import Edge, PathExpr
from repro.schema.model import GraphSchema


@dataclass(frozen=True)
class SchemaTriple:
    """A graph schema triple ``(source, expr, target)`` (Def. 6).

    The paper writes ``sc(t)``, ``eT(t)`` and ``tr(t)`` for the three
    components; they are the ``source``, ``expr`` and ``target`` fields.
    """

    source: str
    expr: PathExpr
    target: str

    def __str__(self) -> str:
        return f"({self.source}, {self.expr}, {self.target})"


def basic_triples(schema: GraphSchema) -> frozenset[SchemaTriple]:
    """The set Tb(S) of basic graph schema triples (Def. 5)."""
    return frozenset(
        SchemaTriple(edge.source_label, Edge(edge.edge_label), edge.target_label)
        for edge in schema.edges()
    )


def triples_for_edge_label(
    schema: GraphSchema, edge_label: str
) -> frozenset[SchemaTriple]:
    """Basic triples whose edge label is ``edge_label`` (rule TBASIC)."""
    return frozenset(
        SchemaTriple(edge.source_label, Edge(edge_label), edge.target_label)
        for edge in schema.edges_for_label(edge_label)
    )
