"""Graph schema formalism (paper §2.1, Def. 1) and schema triples (Def. 5-6)."""

from repro.schema.builder import SchemaBuilder
from repro.schema.model import GraphSchema, PropertySpec, SchemaEdge, SchemaNode
from repro.schema.triples import SchemaTriple, basic_triples
from repro.schema.validation import ConsistencyReport, check_consistency

__all__ = [
    "GraphSchema",
    "PropertySpec",
    "SchemaBuilder",
    "SchemaEdge",
    "SchemaNode",
    "SchemaTriple",
    "basic_triples",
    "ConsistencyReport",
    "check_consistency",
]
