"""Graph schema model (paper Def. 1).

A graph schema is a directed pseudo-multigraph: labelled nodes carrying
typed property specifications, and labelled directed edges (loops and
parallel edges allowed). Following the paper's restrictions (§2.3), each
schema node has exactly one node label and schema edges carry no
properties.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError, UnknownLabelError

#: Data types allowed for properties (paper: T, e.g. String, Integer, Date).
DATA_TYPES = frozenset({"String", "Int", "Float", "Bool", "Date"})

_PYTHON_TYPE_FOR: dict[str, type | tuple[type, ...]] = {
    "String": str,
    "Int": int,
    "Float": float,
    "Bool": bool,
    "Date": str,  # ISO-8601 strings; properties are atomic (§2.3)
}


def value_data_type(value: object) -> str:
    """The schema data type of a property value (the paper's Υ function)."""
    # bool is a subclass of int in Python; test it first.
    if isinstance(value, bool):
        return "Bool"
    if isinstance(value, int):
        return "Int"
    if isinstance(value, float):
        return "Float"
    if isinstance(value, str):
        return "String"
    raise SchemaError(f"property values must be atomic, got {type(value).__name__}")


@dataclass(frozen=True)
class PropertySpec:
    """A key:type pair attached to a schema node (paper: PS ⊆ KS × T)."""

    key: str
    data_type: str

    def __post_init__(self) -> None:
        if self.data_type not in DATA_TYPES:
            raise SchemaError(
                f"unknown data type {self.data_type!r} for key {self.key!r}; "
                f"expected one of {sorted(DATA_TYPES)}"
            )

    def accepts(self, value: object) -> bool:
        """True if ``value`` conforms to this property's declared type."""
        expected = _PYTHON_TYPE_FOR[self.data_type]
        if self.data_type == "Int" and isinstance(value, bool):
            return False
        return isinstance(value, expected)


@dataclass(frozen=True)
class SchemaNode:
    """A schema node: one node label plus its property specification."""

    label: str
    properties: tuple[PropertySpec, ...] = ()

    def __post_init__(self) -> None:
        keys = [p.key for p in self.properties]
        if len(keys) != len(set(keys)):
            raise SchemaError(f"duplicate property keys on node {self.label!r}")

    def property_map(self) -> dict[str, PropertySpec]:
        return {p.key: p for p in self.properties}


@dataclass(frozen=True)
class SchemaEdge:
    """A schema edge: ``source_label -edge_label-> target_label``."""

    source_label: str
    edge_label: str
    target_label: str


class GraphSchema:
    """A graph schema S = (NS, ES, LN, LE, PS, λS, ηS, ξS, ΔS) (Def. 1).

    Because the paper restricts schema nodes to a single label each, schema
    nodes are identified by their label, and edges by their
    (source label, edge label, target label) triple — which is exactly the
    *basic graph schema triple* of Def. 5.
    """

    def __init__(
        self,
        nodes: Iterable[SchemaNode],
        edges: Iterable[SchemaEdge],
        name: str = "schema",
    ):
        self.name = name
        self._nodes: dict[str, SchemaNode] = {}
        for node in nodes:
            if node.label in self._nodes:
                raise SchemaError(f"duplicate schema node label {node.label!r}")
            self._nodes[node.label] = node

        self._edges: list[SchemaEdge] = []
        seen: set[tuple[str, str, str]] = set()
        for edge in edges:
            for endpoint in (edge.source_label, edge.target_label):
                if endpoint not in self._nodes:
                    raise UnknownLabelError(endpoint, kind="node")
            if edge.edge_label in self._nodes:
                raise SchemaError(
                    f"label {edge.edge_label!r} used both as node and edge label "
                    "(the paper requires LN ∩ LE = ∅)"
                )
            key = (edge.source_label, edge.edge_label, edge.target_label)
            if key in seen:
                continue  # pseudo-multigraph: identical triples collapse
            seen.add(key)
            self._edges.append(edge)

        # Indexes used constantly by the inference engine.
        self._by_edge_label: dict[str, list[SchemaEdge]] = {}
        for edge in self._edges:
            self._by_edge_label.setdefault(edge.edge_label, []).append(edge)

    # -- basic accessors -------------------------------------------------
    @property
    def node_labels(self) -> frozenset[str]:
        return frozenset(self._nodes)

    @property
    def edge_labels(self) -> frozenset[str]:
        return frozenset(self._by_edge_label)

    def nodes(self) -> Iterator[SchemaNode]:
        return iter(self._nodes.values())

    def edges(self) -> Iterator[SchemaEdge]:
        return iter(self._edges)

    def node(self, label: str) -> SchemaNode:
        try:
            return self._nodes[label]
        except KeyError:
            raise UnknownLabelError(label, kind="node") from None

    def has_node_label(self, label: str) -> bool:
        return label in self._nodes

    def has_edge_label(self, label: str) -> bool:
        return label in self._by_edge_label

    def edges_for_label(self, edge_label: str) -> list[SchemaEdge]:
        """All schema edges carrying ``edge_label`` (possibly several)."""
        return list(self._by_edge_label.get(edge_label, ()))

    # -- label-set queries used by redundancy removal (§3.2.2) -----------
    def source_labels(self, edge_label: str) -> frozenset[str]:
        """All node labels that may be the *source* of ``edge_label``."""
        return frozenset(e.source_label for e in self.edges_for_label(edge_label))

    def target_labels(self, edge_label: str) -> frozenset[str]:
        """All node labels that may be the *target* of ``edge_label``."""
        return frozenset(e.target_label for e in self.edges_for_label(edge_label))

    # -- misc -------------------------------------------------------------
    def property_spec(self, node_label: str) -> Mapping[str, PropertySpec]:
        return self.node(node_label).property_map()

    def stats(self) -> dict[str, int]:
        """Sizes used by Table 3 (#NR node relations, #ER edge relations)."""
        return {
            "node_labels": len(self._nodes),
            "edge_labels": len(self._by_edge_label),
            "schema_edges": len(self._edges),
        }

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"GraphSchema({self.name!r}, {len(self._nodes)} node labels, "
            f"{len(self._edges)} edges)"
        )
