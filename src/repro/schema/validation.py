"""Schema–database consistency checking (paper Def. 3).

A database D is consistent with a schema S when every node's label exists
in the schema, every edge maps to a schema edge with matching endpoint
labels, and every node property conforms to the schema node's property
specification (strict schema semantics, after PG-Schema).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import ConsistencyError
from repro.graph.model import PropertyGraph
from repro.schema.model import GraphSchema, value_data_type


@dataclass
class ConsistencyReport:
    """Outcome of a consistency check, with human-readable violations."""

    violations: list[str] = field(default_factory=list)
    nodes_checked: int = 0
    edges_checked: int = 0

    @property
    def consistent(self) -> bool:
        return not self.violations

    def raise_if_inconsistent(self) -> None:
        if self.violations:
            preview = "; ".join(self.violations[:5])
            more = len(self.violations) - 5
            suffix = f" (+{more} more)" if more > 0 else ""
            raise ConsistencyError(
                f"database violates schema: {preview}{suffix}"
            )


def check_consistency(
    graph: PropertyGraph,
    schema: GraphSchema,
    max_violations: int = 100,
) -> ConsistencyReport:
    """Check Def. 3; collects up to ``max_violations`` violations."""
    report = ConsistencyReport()

    def record(message: str) -> bool:
        report.violations.append(message)
        return len(report.violations) >= max_violations

    # Node labels and properties.
    for node_id in graph.node_ids():
        report.nodes_checked += 1
        label = graph.node_label(node_id)
        if not schema.has_node_label(label):
            if record(f"node {node_id} has unknown label {label!r}"):
                return report
            continue
        spec = schema.property_spec(label)
        for key, value in graph.node_properties(node_id).items():
            if key not in spec:
                if record(
                    f"node {node_id} ({label}) has undeclared property {key!r}"
                ):
                    return report
                continue
            try:
                data_type = value_data_type(value)
            except Exception:
                data_type = "<non-atomic>"
            if not spec[key].accepts(value):
                if record(
                    f"node {node_id} ({label}).{key} = {value!r} has type "
                    f"{data_type}, schema requires {spec[key].data_type}"
                ):
                    return report

    # Edges: each must correspond to a schema edge with matching labels.
    allowed = {
        (edge.source_label, edge.edge_label, edge.target_label)
        for edge in schema.edges()
    }
    for edge_label in graph.edge_labels:
        for source, target in graph.edge_pairs(edge_label):
            report.edges_checked += 1
            key = (graph.node_label(source), edge_label, graph.node_label(target))
            if key not in allowed:
                if record(
                    f"edge {source} -{edge_label}-> {target} with endpoint "
                    f"labels ({key[0]}, {key[2]}) has no schema counterpart"
                ):
                    return report
    return report
