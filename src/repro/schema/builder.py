"""Fluent construction of graph schemas.

Example::

    schema = (
        SchemaBuilder("yago")
        .node("PERSON", name="String", age="Int")
        .node("CITY", name="String")
        .edge("PERSON", "livesIn", "CITY")
        .edge("PERSON", "isMarriedTo", "PERSON")
        .build()
    )
"""

from __future__ import annotations

from repro.errors import SchemaError
from repro.schema.model import GraphSchema, PropertySpec, SchemaEdge, SchemaNode


class SchemaBuilder:
    """Accumulates node and edge declarations, then builds a GraphSchema."""

    def __init__(self, name: str = "schema"):
        self.name = name
        self._nodes: list[SchemaNode] = []
        self._node_labels: set[str] = set()
        self._edges: list[SchemaEdge] = []

    def node(self, label: str, **properties: str) -> "SchemaBuilder":
        """Declare a node label with ``key="Type"`` property specs."""
        if label in self._node_labels:
            raise SchemaError(f"node label {label!r} declared twice")
        specs = tuple(
            PropertySpec(key, data_type) for key, data_type in properties.items()
        )
        self._nodes.append(SchemaNode(label, specs))
        self._node_labels.add(label)
        return self

    def edge(self, source: str, label: str, target: str) -> "SchemaBuilder":
        """Declare a directed edge ``source -label-> target``."""
        self._edges.append(SchemaEdge(source, label, target))
        return self

    def edges(self, *triples: tuple[str, str, str]) -> "SchemaBuilder":
        """Declare several ``(source, label, target)`` edges at once."""
        for source, label, target in triples:
            self.edge(source, label, target)
        return self

    def build(self) -> GraphSchema:
        return GraphSchema(self._nodes, self._edges, name=self.name)


def yago_example_schema() -> GraphSchema:
    """The running-example schema of the paper's Fig. 1."""
    return (
        SchemaBuilder("yago-fig1")
        .node("PERSON", name="String", age="Int")
        .node("CITY", name="String")
        .node("PROPERTY", address="String")
        .node("REGION", name="String")
        .node("COUNTRY", name="String")
        .edge("PERSON", "isMarriedTo", "PERSON")
        .edge("PERSON", "livesIn", "CITY")
        .edge("PERSON", "owns", "PROPERTY")
        .edge("PROPERTY", "isLocatedIn", "CITY")
        .edge("CITY", "isLocatedIn", "REGION")
        .edge("REGION", "isLocatedIn", "COUNTRY")
        .edge("COUNTRY", "dealsWith", "COUNTRY")
        .build()
    )
