"""Cost-model calibration: Q-error telemetry and fitted operator weights.

PR 5's :class:`~repro.planner.cost.CostProfile` weights are hand-set
constants. This module closes the loop with *measurements*:

* every ``ra``/``vec`` execution appends a :class:`CalibrationRecord` to
  the session's bounded :class:`CalibrationLog` — per-operator-kind
  (estimated, actual) cardinality pairs plus exclusive wall-clock
  timings, tagged with the session's workload;
* :func:`q_error_summary` reports the estimator's Q-error distribution
  (p50/p90/max — ``max(est, act)/min(est, act)``, both floored at one
  row) per workload and per operator kind;
* :func:`fit_profile` regresses per-row operator weights from the
  timings by least squares through the origin, yielding a profile in
  **seconds per row** — fitted profiles of different backends are
  therefore directly comparable, which is what lets the batch planner
  pick a different backend per query;
* :class:`CalibrationState` bundles the fitted profiles with a Q-error
  snapshot and round-trips through JSON, so a serving process can boot
  with the profiles a ``repro calibrate`` run measured offline.

Backends without per-operator telemetry (``sqlite``: the executor is a
black box behind the SQL text) are calibrated by a single scalar: least
squares of measured seconds against the planner's predicted cost maps
the hand-set profile into the same seconds scale.
"""

from __future__ import annotations

import json
import math
import pathlib
from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.planner.cost import OPERATOR_KINDS, CostProfile, cost_profile

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.exec.executor import ExecutionStats

#: Log format tag written into every persisted calibration file.
CALIBRATION_FORMAT = "repro-calibration/v1"

#: Default bound on the per-session telemetry log (oldest drop first).
DEFAULT_LOG_SIZE = 2048

#: An operator kind is fitted only when the log holds at least this many
#: output rows for it — below that, per-row noise dominates the slope.
MIN_KIND_ROWS = 16


def q_error(estimated: float | None, actual: float) -> float | None:
    """``max(est, act) / min(est, act)`` with both sides floored at 1.

    ``None`` when no estimate was recorded (e.g. greedy executions of
    plans with no root estimate). Zero-actual results and cold-statistics
    zero estimates are both floored — an estimator that said 0 for a
    0-row result scores a perfect 1.0, not a division error.
    """
    if estimated is None:
        return None
    est = max(float(estimated), 1.0)
    act = max(float(actual), 1.0)
    return max(est, act) / min(est, act)


def _percentile(values: list[float], fraction: float) -> float:
    """Nearest-rank percentile of a non-empty value list."""
    ordered = sorted(values)
    rank = max(math.ceil(fraction * len(ordered)), 1)
    return ordered[min(rank, len(ordered)) - 1]


def _distribution(values: list[float]) -> dict | None:
    if not values:
        return None
    return {
        "count": len(values),
        "p50": _percentile(values, 0.50),
        "p90": _percentile(values, 0.90),
        "max": max(values),
    }


@dataclass(frozen=True)
class CalibrationRecord:
    """Telemetry of one execution: what was estimated, what happened.

    ``op_rows``/``op_seconds`` are the executor's per-operator-kind
    actual output rows and exclusive timings; ``op_estimates`` the
    planner-side estimates from the same plan
    (:func:`~repro.planner.cost.estimate_kind_rows`). Backends without
    per-operator telemetry leave them empty and carry only the totals:
    ``seconds``, the root (estimated, actual) pair and the planner's
    ``predicted_cost``, which scalar calibration regresses against.
    """

    backend: str
    workload: str
    seconds: float
    op_rows: Mapping[str, int]
    op_estimates: Mapping[str, float]
    op_seconds: Mapping[str, float]
    ops_evaluated: int = 0
    estimated_rows: float | None = None
    actual_rows: int = 0
    predicted_cost: float | None = None

    @property
    def root_q_error(self) -> float | None:
        return q_error(self.estimated_rows, self.actual_rows)

    def kind_q_errors(self) -> dict[str, float]:
        """Q-error per operator kind with any estimated or actual rows."""
        errors: dict[str, float] = {}
        for kind in OPERATOR_KINDS:
            estimated = self.op_estimates.get(kind)
            actual = self.op_rows.get(kind)
            if not estimated and not actual:
                continue  # the kind does not occur in this plan
            error = q_error(estimated or 0.0, actual or 0)
            if error is not None:
                errors[kind] = error
        return errors

    def to_dict(self) -> dict:
        return {
            "backend": self.backend,
            "workload": self.workload,
            "seconds": self.seconds,
            "op_rows": dict(self.op_rows),
            "op_estimates": dict(self.op_estimates),
            "op_seconds": dict(self.op_seconds),
            "ops_evaluated": self.ops_evaluated,
            "estimated_rows": self.estimated_rows,
            "actual_rows": self.actual_rows,
            "predicted_cost": self.predicted_cost,
        }


def q_error_summary(records: Iterable[CalibrationRecord]) -> dict:
    """Q-error distributions per workload (plus per operator kind).

    ``{workload: {"count", "root": {count,p50,p90,max} | None,
    "by_kind": {kind: {...}}}}`` — ``root`` is ``None`` when no record
    of the workload carried a root estimate (cold greedy executions).
    """
    by_workload: dict[str, list[CalibrationRecord]] = {}
    for record in records:
        by_workload.setdefault(record.workload, []).append(record)
    summary: dict[str, dict] = {}
    for workload in sorted(by_workload):
        group = by_workload[workload]
        roots = [
            error
            for error in (record.root_q_error for record in group)
            if error is not None
        ]
        kinds: dict[str, list[float]] = {}
        for record in group:
            for kind, error in record.kind_q_errors().items():
                kinds.setdefault(kind, []).append(error)
        summary[workload] = {
            "count": len(group),
            "root": _distribution(roots),
            "by_kind": {
                kind: _distribution(kinds[kind]) for kind in sorted(kinds)
            },
        }
    return summary


class CalibrationLog:
    """Bounded per-session telemetry log (oldest records drop first)."""

    def __init__(self, max_records: int = DEFAULT_LOG_SIZE):
        if max_records < 1:
            raise ValueError(
                f"calibration log size must be >= 1, got {max_records!r}"
            )
        self._records: deque[CalibrationRecord] = deque(maxlen=max_records)
        #: Total records ever offered, including those the bound dropped.
        self.total_recorded = 0

    def __len__(self) -> int:
        return len(self._records)

    @property
    def records(self) -> tuple[CalibrationRecord, ...]:
        return tuple(self._records)

    def record(self, record: CalibrationRecord) -> None:
        self._records.append(record)
        self.total_recorded += 1

    def record_execution(
        self,
        *,
        backend: str,
        workload: str,
        seconds: float,
        stats: "ExecutionStats | None" = None,
        op_estimates: Mapping[str, float] | None = None,
        estimated_rows: float | None = None,
        actual_rows: int = 0,
        predicted_cost: float | None = None,
    ) -> CalibrationRecord:
        """Append one execution's telemetry; returns the record."""
        record = CalibrationRecord(
            backend=backend,
            workload=workload,
            seconds=seconds,
            op_rows=stats.operator_rows() if stats is not None else {},
            op_estimates=dict(op_estimates or {}),
            op_seconds=stats.operator_seconds() if stats is not None else {},
            ops_evaluated=stats.ops_evaluated if stats is not None else 0,
            estimated_rows=estimated_rows,
            actual_rows=actual_rows,
            predicted_cost=predicted_cost,
        )
        self.record(record)
        return record

    def backends(self) -> tuple[str, ...]:
        return tuple(sorted({record.backend for record in self._records}))

    def summary(self) -> dict:
        """Per-workload Q-error distributions over the whole log."""
        return q_error_summary(self._records)

    def backend_summary(self, backend: str) -> dict | None:
        """Root-cardinality Q-error distribution for one backend."""
        roots = [
            error
            for record in self._records
            if record.backend == backend
            for error in (record.root_q_error,)
            if error is not None
        ]
        return _distribution(roots)

    def clear(self) -> None:
        self._records.clear()


def _lsq_through_origin(pairs: list[tuple[float, float]]) -> float | None:
    """Least-squares slope of ``y ~ w*x`` through the origin."""
    sxx = sum(x * x for x, _ in pairs)
    if sxx <= 0.0:
        return None
    return sum(x * y for x, y in pairs) / sxx


def _median(values: list[float]) -> float:
    ordered = sorted(values)
    middle = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[middle]
    return (ordered[middle - 1] + ordered[middle]) / 2.0


def _fit_scalar(
    records: list[CalibrationRecord], base: CostProfile
) -> CostProfile:
    """Scale a hand-set profile into measured seconds by one scalar.

    For backends without per-operator telemetry: least squares of
    measured seconds against the planner's predicted cost (both per
    record) gives the cost-unit → seconds conversion, preserving the
    profile's relative shape. Falls back to the base profile when no
    record carries a predicted cost.
    """
    pairs = [
        (record.predicted_cost, record.seconds)
        for record in records
        if record.predicted_cost is not None and record.predicted_cost > 0.0
    ]
    scale = _lsq_through_origin(pairs) if pairs else None
    if scale is None or scale <= 0.0:
        return base
    return CostProfile(
        name=base.name,
        scan=base.scan * scale,
        join_build=base.join_build * scale,
        join_probe=base.join_probe * scale,
        join_out=base.join_out * scale,
        dedup=base.dedup * scale,
        select=base.select * scale,
        fixpoint_row=base.fixpoint_row * scale,
        startup=base.startup * scale,
    )


def fit_profile(
    records: Iterable[CalibrationRecord],
    backend: str,
    base: CostProfile | None = None,
    min_kind_rows: int = MIN_KIND_ROWS,
) -> CostProfile:
    """Fit ``backend``'s cost profile from its telemetry records.

    Each observed operator kind gets a per-row weight from least squares
    through the origin of (output rows → exclusive seconds) over the
    log. Kinds the log never exercised keep the hand-set base weight,
    rescaled by the median fitted/base ratio so the whole profile stays
    coherent in seconds. Composite weights:

    * ``dedup`` pools union and projection (both are set-semantics
      dedup work on every substrate),
    * the three join weights cannot be separated from output-side
      telemetry alone, so the measured slope lands on ``join_out`` and
      ``join_build``/``join_probe`` keep the base profile's ratios to it,
    * ``startup`` is fitted from the per-record residual (measured
      seconds minus the per-row model) against the operator count,
      clamped at zero.

    Records without per-operator telemetry degrade to scalar fitting
    (see :func:`_fit_scalar`); an empty log returns the base unchanged.
    """
    base = base or cost_profile(backend)
    recs = [record for record in records if record.backend == backend]
    if not recs:
        return base
    if not any(any(record.op_rows.values()) for record in recs):
        return _fit_scalar(recs, base)

    def kind_pairs(kinds: tuple[str, ...]) -> list[tuple[float, float]]:
        return [
            (
                float(sum(record.op_rows.get(kind, 0) for kind in kinds)),
                sum(record.op_seconds.get(kind, 0.0) for kind in kinds),
            )
            for record in recs
        ]

    def fit_kind(kinds: tuple[str, ...]) -> float | None:
        pairs = kind_pairs(kinds)
        if sum(x for x, _ in pairs) < min_kind_rows:
            return None
        if sum(y for _, y in pairs) <= 0.0:
            return None
        slope = _lsq_through_origin(pairs)
        return slope if slope is not None and slope > 0.0 else None

    fitted = {
        "scan": fit_kind(("scan",)),
        "join": fit_kind(("join",)),
        "dedup": fit_kind(("union", "project")),
        "select": fit_kind(("select",)),
        "fixpoint": fit_kind(("fixpoint",)),
    }
    base_of = {
        "scan": base.scan,
        "join": base.join_out,
        "dedup": base.dedup,
        "select": base.select,
        "fixpoint": base.fixpoint_row,
    }
    ratios = [
        fitted[kind] / base_of[kind]
        for kind in fitted
        if fitted[kind] is not None and base_of[kind] > 0.0
    ]
    if not ratios:
        return _fit_scalar(recs, base)
    scale = _median(ratios)

    def weight(kind: str) -> float:
        value = fitted[kind]
        return value if value is not None else base_of[kind] * scale

    scan = weight("scan")
    join_out = weight("join")
    dedup = weight("dedup")
    select = weight("select")
    fixpoint_row = weight("fixpoint")
    join_ratio = join_out / base.join_out if base.join_out > 0.0 else scale
    join_build = base.join_build * join_ratio
    join_probe = base.join_probe * join_ratio

    # Startup: whatever the per-row model leaves unexplained, spread
    # over the operator count (includes encode/decode overhead — a flat
    # per-operator charge is the only non-row term the model has).
    per_row = {
        "scan": scan,
        "join": join_out,
        "union": dedup,
        "project": dedup,
        "select": select,
        "fixpoint": fixpoint_row,
    }
    residual_pairs = []
    for record in recs:
        modeled = sum(
            per_row[kind] * record.op_rows.get(kind, 0)
            for kind in per_row
        )
        residual_pairs.append(
            (float(record.ops_evaluated), record.seconds - modeled)
        )
    startup = _lsq_through_origin(residual_pairs)
    startup = max(startup, 0.0) if startup is not None else 0.0

    return CostProfile(
        name=base.name,
        scan=scan,
        join_build=join_build,
        join_probe=join_probe,
        join_out=join_out,
        dedup=dedup,
        select=select,
        fixpoint_row=fixpoint_row,
        startup=startup,
    )


@dataclass
class CalibrationState:
    """Fitted profiles plus the Q-error snapshot they were fitted from.

    The unit a serving process boots with: ``profiles`` maps backend
    name → fitted :class:`CostProfile` (in seconds per row, mutually
    comparable), ``q_error`` is the :func:`q_error_summary` snapshot at
    fit time and ``records`` how many log records the fit consumed.
    """

    profiles: dict[str, CostProfile] = field(default_factory=dict)
    q_error: dict = field(default_factory=dict)
    records: int = 0

    def profile_for(self, backend: str) -> CostProfile | None:
        return self.profiles.get(backend)

    @property
    def fitted_backends(self) -> tuple[str, ...]:
        return tuple(sorted(self.profiles))

    def to_json(self) -> dict:
        return {
            "format": CALIBRATION_FORMAT,
            "records": self.records,
            "profiles": {
                name: profile.to_dict()
                for name, profile in sorted(self.profiles.items())
            },
            "q_error": self.q_error,
        }

    @classmethod
    def from_json(cls, payload: dict) -> "CalibrationState":
        if not isinstance(payload, dict):
            raise ValueError(
                f"calibration payload must be an object, got {type(payload).__name__}"
            )
        fmt = payload.get("format")
        if fmt != CALIBRATION_FORMAT:
            raise ValueError(
                f"unsupported calibration format {fmt!r}; "
                f"expected {CALIBRATION_FORMAT!r}"
            )
        profiles_raw = payload.get("profiles", {})
        if not isinstance(profiles_raw, dict):
            raise ValueError("calibration 'profiles' must be an object")
        profiles = {
            name: CostProfile.from_dict(entry)
            for name, entry in profiles_raw.items()
        }
        records = payload.get("records", 0)
        if not isinstance(records, int) or records < 0:
            raise ValueError(
                f"calibration 'records' must be a non-negative int, "
                f"got {records!r}"
            )
        q_error_raw = payload.get("q_error", {})
        if not isinstance(q_error_raw, dict):
            raise ValueError("calibration 'q_error' must be an object")
        return cls(profiles=profiles, q_error=q_error_raw, records=records)

    def save(self, path: str | pathlib.Path) -> None:
        pathlib.Path(path).write_text(
            json.dumps(self.to_json(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: str | pathlib.Path) -> "CalibrationState":
        return cls.from_json(json.loads(pathlib.Path(path).read_text()))


def calibrate_from_log(
    log: CalibrationLog,
    backends: Iterable[str] | None = None,
) -> CalibrationState:
    """Fit a :class:`CalibrationState` from one session's log."""
    records = log.records
    names = tuple(backends) if backends is not None else log.backends()
    profiles = {
        name: fit_profile(records, name)
        for name in names
        if any(record.backend == name for record in records)
    }
    return CalibrationState(
        profiles=profiles,
        q_error=q_error_summary(records),
        records=len(records),
    )
