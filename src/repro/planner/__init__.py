"""Cost-based planning across the rewrite → µ-RA → backend pipeline.

The linear pipeline (rewrite, translate, optimise greedily, compile)
commits to one plan per stage. This package turns each stage into a
*candidate generator* and picks the cheapest end-to-end plan under a
per-backend physical cost model:

* :mod:`repro.planner.candidates` — enumerate semantically equivalent
  plans (original query, full and per-relation partial schema rewrites,
  bounded alternative join orders) and rank them,
* :mod:`repro.planner.cost` — estimated rows × per-backend operator
  weights, so ``vec``, ``ra`` and ``sqlite`` cost the same logical plan
  differently.

Sessions opt in with ``GraphSession(..., planner="cost")`` or per call
(``session.execute(query, planner="cost")``); execution feeds actual
cardinalities back into the per-store
:class:`~repro.ra.stats.StoreStatistics` correction table, and plans
whose estimates drift past the session's re-plan threshold are planned
again against the corrected statistics.
"""

from repro.planner.candidates import (
    DEFAULT_JOIN_ORDERS,
    DEFAULT_MAX_PARTIAL,
    PlanCandidate,
    PlanChoice,
    RankedCandidate,
    enumerate_plan_candidates,
    plan_query,
    rank_candidates,
)
from repro.planner.calibration import (
    CalibrationLog,
    CalibrationRecord,
    CalibrationState,
    calibrate_from_log,
    fit_profile,
    q_error,
    q_error_summary,
)
from repro.planner.cost import (
    OPERATOR_KINDS,
    PROFILES,
    CostProfile,
    TermCost,
    cost_profile,
    cost_term,
    estimate_kind_rows,
    estimate_term_bytes,
)

#: The planner modes a session accepts.
PLANNER_MODES = ("greedy", "cost")


def validate_planner(mode: str) -> str:
    if mode not in PLANNER_MODES:
        raise ValueError(
            f"unknown planner {mode!r}; expected one of {PLANNER_MODES}"
        )
    return mode


__all__ = [
    "PLANNER_MODES",
    "validate_planner",
    "PlanCandidate",
    "PlanChoice",
    "RankedCandidate",
    "enumerate_plan_candidates",
    "plan_query",
    "rank_candidates",
    "CostProfile",
    "TermCost",
    "PROFILES",
    "OPERATOR_KINDS",
    "cost_profile",
    "cost_term",
    "estimate_kind_rows",
    "estimate_term_bytes",
    "CalibrationLog",
    "CalibrationRecord",
    "CalibrationState",
    "calibrate_from_log",
    "fit_profile",
    "q_error",
    "q_error_summary",
    "DEFAULT_MAX_PARTIAL",
    "DEFAULT_JOIN_ORDERS",
]
