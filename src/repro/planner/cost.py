"""Physical cost model: estimated rows × per-backend operator weights.

:mod:`repro.ra.stats` answers *how many rows* an operator produces; this
module answers *what those rows cost on a given substrate*. Each backend
gets a :class:`CostProfile` of per-row weights for the operator kinds the
executors actually spend time in — scan, hash-join build/probe/output,
dedup (set-semantics projection and union), fixpoint rounds — plus a
per-operator startup charge.

The absolute numbers are arbitrary; the *relative* shape is what the
planner needs and it mirrors measured behaviour:

* ``vec`` moves whole columns, so its per-row weights are tiny but every
  operator pays a real kernel-dispatch startup — plans with many small
  operators (e.g. a rewrite exploded into dozens of disjuncts) cost more
  than the same rows through few operators;
* ``ra`` interprets tuple-at-a-time, so per-row weights dominate and
  operator count barely matters;
* ``sqlite`` sits in between (compiled loop, but row-at-a-time VM).

Backends without a profile of their own (``gdb``, ``reference``,
third-party registrations) fall back to the interpreter-shaped default,
which keeps ranking purely cardinality-driven for them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ra.stats import Estimator
from repro.ra.terms import (
    Fix,
    Join,
    Project,
    RaTerm,
    RaUnion,
    Rel,
    Rename,
    SelectEq,
    Var,
)
from repro.storage.relational import RelationalStore

#: Semi-naive rounds charged per fixpoint (same guess as ra.plan).
_FIXPOINT_ROUNDS = 3.0


@dataclass(frozen=True)
class CostProfile:
    """Per-row operator weights for one execution substrate."""

    name: str
    scan: float          # per row scanned out of a base table
    join_build: float    # per build-side row (hash table insert)
    join_probe: float    # per probe-side row (hash lookup)
    join_out: float      # per output row materialised
    dedup: float         # per row deduplicated (π, ∪ distinct)
    select: float        # per row filtered (σ)
    fixpoint_row: float  # per row tracked across fixpoint rounds
    startup: float       # flat charge per physical operator

    def to_dict(self) -> dict:
        """JSON-serializable weight mapping (calibration persistence)."""
        return {
            "name": self.name,
            "scan": self.scan,
            "join_build": self.join_build,
            "join_probe": self.join_probe,
            "join_out": self.join_out,
            "dedup": self.dedup,
            "select": self.select,
            "fixpoint_row": self.fixpoint_row,
            "startup": self.startup,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CostProfile":
        fields = {
            "scan", "join_build", "join_probe", "join_out",
            "dedup", "select", "fixpoint_row", "startup",
        }
        unknown = sorted(set(payload) - fields - {"name"})
        if unknown:
            raise ValueError(
                f"unknown cost-profile field(s): {', '.join(unknown)}"
            )
        missing = sorted(fields - set(payload)) + (
            [] if "name" in payload else ["name"]
        )
        if missing:
            raise ValueError(
                f"cost profile missing field(s): {', '.join(missing)}"
            )
        name = payload["name"]
        if not isinstance(name, str):
            raise ValueError(f"cost-profile name must be a string, got {name!r}")
        weights = {}
        for field in sorted(fields):
            value = payload[field]
            if isinstance(value, bool) or not isinstance(value, (int, float)):
                raise ValueError(
                    f"cost-profile weight {field!r} must be a number, "
                    f"got {value!r}"
                )
            if value < 0:
                raise ValueError(
                    f"cost-profile weight {field!r} must be >= 0, got {value!r}"
                )
            weights[field] = float(value)
        return cls(name=name, **weights)


#: The tuple-at-a-time interpreter: per-row work dominates everything.
_RA_PROFILE = CostProfile(
    name="ra",
    scan=1.0,
    join_build=1.6,
    join_probe=1.2,
    join_out=0.8,
    dedup=0.9,
    select=0.6,
    fixpoint_row=1.2,
    startup=2.0,
)

#: The vectorized executor: cheap rows, expensive operator dispatch.
_VEC_PROFILE = CostProfile(
    name="vec",
    scan=0.05,
    join_build=0.25,
    join_probe=0.15,
    join_out=0.06,
    dedup=0.12,
    select=0.05,
    fixpoint_row=0.25,
    startup=40.0,
)

#: SQLite's compiled row-at-a-time VM: between the two.
_SQLITE_PROFILE = CostProfile(
    name="sqlite",
    scan=0.30,
    join_build=0.55,
    join_probe=0.40,
    join_out=0.25,
    dedup=0.35,
    select=0.20,
    fixpoint_row=0.45,
    startup=8.0,
)

PROFILES: dict[str, CostProfile] = {
    "ra": _RA_PROFILE,
    "vec": _VEC_PROFILE,
    "sqlite": _SQLITE_PROFILE,
}


def cost_profile(backend: str) -> CostProfile:
    """The cost profile for ``backend`` (interpreter-shaped fallback)."""
    return PROFILES.get(backend, _RA_PROFILE)


@dataclass(frozen=True)
class TermCost:
    """Estimated total cost and output cardinality of one term."""

    total: float
    rows: float


def cost_term(
    term: RaTerm,
    store: RelationalStore,
    profile: CostProfile,
    estimator: Estimator | None = None,
) -> TermCost:
    """Walk ``term`` bottom-up, charging ``profile`` weights per operator."""
    estimator = estimator or Estimator(store)

    def visit(node: RaTerm) -> TermCost:
        rows = max(estimator.rows(node), 0.0)
        if isinstance(node, Rel):
            return TermCost(profile.startup + rows * profile.scan, rows)
        if isinstance(node, Var):
            # Frontier scans are internal to a fixpoint round; the
            # fixpoint node charges for them.
            return TermCost(0.0, rows)
        if isinstance(node, Rename):
            # Renames are metadata-only on every substrate.
            return visit(node.child)
        if isinstance(node, Project):
            child = visit(node.child)
            return TermCost(
                child.total + profile.startup + child.rows * profile.dedup,
                rows,
            )
        if isinstance(node, SelectEq):
            child = visit(node.child)
            return TermCost(
                child.total + profile.startup + child.rows * profile.select,
                rows,
            )
        if isinstance(node, Join):
            left = visit(node.left)
            right = visit(node.right)
            build, probe = (
                (left, right) if left.rows <= right.rows else (right, left)
            )
            total = (
                left.total
                + right.total
                + profile.startup
                + build.rows * profile.join_build
                + probe.rows * profile.join_probe
                + rows * profile.join_out
            )
            return TermCost(total, rows)
        if isinstance(node, RaUnion):
            left = visit(node.left)
            right = visit(node.right)
            total = (
                left.total
                + right.total
                + profile.startup
                + (left.rows + right.rows) * profile.dedup
            )
            return TermCost(total, rows)
        if isinstance(node, Fix):
            base = visit(node.base)
            step = visit(node.step)
            # The step body re-runs once per semi-naive round and every
            # produced row is set-differenced against the state.
            total = (
                base.total
                + _FIXPOINT_ROUNDS * step.total
                + profile.startup
                + rows * profile.fixpoint_row
            )
            return TermCost(total, rows)
        raise TypeError(f"unknown RA term {node!r}")

    return visit(term)


def estimate_term_bytes(
    term: RaTerm,
    store: RelationalStore,
    estimator: Estimator | None = None,
) -> float:
    """Estimated peak bytes of materialised encoded columns for ``term``.

    Mirrors the vec executor's residency model — every materialised
    table is one int64 code (8 bytes) per row per column — and the
    shape of batch evaluation: when an operator materialises its
    output, its children's outputs are still alive, so the plan's peak
    is the max over operators of *own output bytes + children's output
    bytes*. Renames are metadata-only and frontier ``Var`` scans alias
    state the enclosing fixpoint already accounts for. This is the
    planner's **soft** memory estimate; a
    :class:`~repro.graph.evaluator.ResourceBudget`'s ``max_bytes``
    remains the hard runtime ceiling.
    """
    estimator = estimator or Estimator(store)

    def bytes_of(node: RaTerm) -> float:
        try:
            node_width = max(len(node.columns(store)), 1)
        except Exception:  # width unknown: assume the binary-edge shape
            node_width = 2
        return max(estimator.rows(node), 0.0) * node_width * 8.0

    peak = 0.0

    def visit(node: RaTerm) -> float:
        """Post-order walk; returns the node's output bytes."""
        nonlocal peak
        if isinstance(node, Rename):
            return visit(node.child)
        if isinstance(node, Var):
            return 0.0
        if isinstance(node, Rel):
            own = bytes_of(node)
            peak = max(peak, own)
            return own
        if isinstance(node, (Project, SelectEq)):
            children = [visit(node.child)]
        elif isinstance(node, (Join, RaUnion)):
            children = [visit(node.left), visit(node.right)]
        elif isinstance(node, Fix):
            children = [visit(node.base), visit(node.step)]
        else:
            raise TypeError(f"unknown RA term {node!r}")
        own = bytes_of(node)
        peak = max(peak, own + sum(children))
        return own

    visit(term)
    return peak


#: The operator kinds telemetry is recorded under — one entry per
#: ``*_rows``/``*_seconds`` counter pair on
#: :class:`~repro.exec.executor.ExecutionStats`.
OPERATOR_KINDS = ("scan", "join", "union", "select", "project", "fixpoint")


def estimate_kind_rows(
    term: RaTerm,
    store: RelationalStore,
    estimator: Estimator | None = None,
) -> dict[str, float]:
    """Estimated output rows per operator kind for one term.

    Mirrors the executors' per-kind actual-row counters (each operator
    contributes its *output* cardinality to its kind), so the pairs
    (estimate, actual) feed Q-error accounting directly. Operators
    inside a fixpoint step are charged once per assumed semi-naive
    round, matching :func:`cost_term`'s model — the Q-error then
    measures the cost model's real estimation error, rounds included.
    Renames and frontier scans contribute nothing, exactly like the
    executors.
    """
    estimator = estimator or Estimator(store)
    totals = {kind: 0.0 for kind in OPERATOR_KINDS}

    def visit(node: RaTerm, multiplier: float) -> None:
        rows = max(estimator.rows(node), 0.0) * multiplier
        if isinstance(node, Rel):
            totals["scan"] += rows
            return
        if isinstance(node, Var):
            return
        if isinstance(node, Rename):
            visit(node.child, multiplier)
            return
        if isinstance(node, Project):
            totals["project"] += rows
            visit(node.child, multiplier)
            return
        if isinstance(node, SelectEq):
            totals["select"] += rows
            visit(node.child, multiplier)
            return
        if isinstance(node, Join):
            totals["join"] += rows
            visit(node.left, multiplier)
            visit(node.right, multiplier)
            return
        if isinstance(node, RaUnion):
            totals["union"] += rows
            visit(node.left, multiplier)
            visit(node.right, multiplier)
            return
        if isinstance(node, Fix):
            totals["fixpoint"] += rows
            visit(node.base, multiplier)
            visit(node.step, multiplier * _FIXPOINT_ROUNDS)
            return
        raise TypeError(f"unknown RA term {node!r}")

    visit(term, 1.0)
    return totals
