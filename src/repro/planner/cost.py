"""Physical cost model: estimated rows × per-backend operator weights.

:mod:`repro.ra.stats` answers *how many rows* an operator produces; this
module answers *what those rows cost on a given substrate*. Each backend
gets a :class:`CostProfile` of per-row weights for the operator kinds the
executors actually spend time in — scan, hash-join build/probe/output,
dedup (set-semantics projection and union), fixpoint rounds — plus a
per-operator startup charge.

The absolute numbers are arbitrary; the *relative* shape is what the
planner needs and it mirrors measured behaviour:

* ``vec`` moves whole columns, so its per-row weights are tiny but every
  operator pays a real kernel-dispatch startup — plans with many small
  operators (e.g. a rewrite exploded into dozens of disjuncts) cost more
  than the same rows through few operators;
* ``ra`` interprets tuple-at-a-time, so per-row weights dominate and
  operator count barely matters;
* ``sqlite`` sits in between (compiled loop, but row-at-a-time VM).

Backends without a profile of their own (``gdb``, ``reference``,
third-party registrations) fall back to the interpreter-shaped default,
which keeps ranking purely cardinality-driven for them.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.ra.stats import Estimator
from repro.ra.terms import (
    Fix,
    Join,
    Project,
    RaTerm,
    RaUnion,
    Rel,
    Rename,
    SelectEq,
    Var,
)
from repro.storage.relational import RelationalStore

#: Semi-naive rounds charged per fixpoint (same guess as ra.plan).
_FIXPOINT_ROUNDS = 3.0


@dataclass(frozen=True)
class CostProfile:
    """Per-row operator weights for one execution substrate."""

    name: str
    scan: float          # per row scanned out of a base table
    join_build: float    # per build-side row (hash table insert)
    join_probe: float    # per probe-side row (hash lookup)
    join_out: float      # per output row materialised
    dedup: float         # per row deduplicated (π, ∪ distinct)
    select: float        # per row filtered (σ)
    fixpoint_row: float  # per row tracked across fixpoint rounds
    startup: float       # flat charge per physical operator


#: The tuple-at-a-time interpreter: per-row work dominates everything.
_RA_PROFILE = CostProfile(
    name="ra",
    scan=1.0,
    join_build=1.6,
    join_probe=1.2,
    join_out=0.8,
    dedup=0.9,
    select=0.6,
    fixpoint_row=1.2,
    startup=2.0,
)

#: The vectorized executor: cheap rows, expensive operator dispatch.
_VEC_PROFILE = CostProfile(
    name="vec",
    scan=0.05,
    join_build=0.25,
    join_probe=0.15,
    join_out=0.06,
    dedup=0.12,
    select=0.05,
    fixpoint_row=0.25,
    startup=40.0,
)

#: SQLite's compiled row-at-a-time VM: between the two.
_SQLITE_PROFILE = CostProfile(
    name="sqlite",
    scan=0.30,
    join_build=0.55,
    join_probe=0.40,
    join_out=0.25,
    dedup=0.35,
    select=0.20,
    fixpoint_row=0.45,
    startup=8.0,
)

PROFILES: dict[str, CostProfile] = {
    "ra": _RA_PROFILE,
    "vec": _VEC_PROFILE,
    "sqlite": _SQLITE_PROFILE,
}


def cost_profile(backend: str) -> CostProfile:
    """The cost profile for ``backend`` (interpreter-shaped fallback)."""
    return PROFILES.get(backend, _RA_PROFILE)


@dataclass(frozen=True)
class TermCost:
    """Estimated total cost and output cardinality of one term."""

    total: float
    rows: float


def cost_term(
    term: RaTerm,
    store: RelationalStore,
    profile: CostProfile,
    estimator: Estimator | None = None,
) -> TermCost:
    """Walk ``term`` bottom-up, charging ``profile`` weights per operator."""
    estimator = estimator or Estimator(store)

    def visit(node: RaTerm) -> TermCost:
        rows = max(estimator.rows(node), 0.0)
        if isinstance(node, Rel):
            return TermCost(profile.startup + rows * profile.scan, rows)
        if isinstance(node, Var):
            # Frontier scans are internal to a fixpoint round; the
            # fixpoint node charges for them.
            return TermCost(0.0, rows)
        if isinstance(node, Rename):
            # Renames are metadata-only on every substrate.
            return visit(node.child)
        if isinstance(node, Project):
            child = visit(node.child)
            return TermCost(
                child.total + profile.startup + child.rows * profile.dedup,
                rows,
            )
        if isinstance(node, SelectEq):
            child = visit(node.child)
            return TermCost(
                child.total + profile.startup + child.rows * profile.select,
                rows,
            )
        if isinstance(node, Join):
            left = visit(node.left)
            right = visit(node.right)
            build, probe = (
                (left, right) if left.rows <= right.rows else (right, left)
            )
            total = (
                left.total
                + right.total
                + profile.startup
                + build.rows * profile.join_build
                + probe.rows * profile.join_probe
                + rows * profile.join_out
            )
            return TermCost(total, rows)
        if isinstance(node, RaUnion):
            left = visit(node.left)
            right = visit(node.right)
            total = (
                left.total
                + right.total
                + profile.startup
                + (left.rows + right.rows) * profile.dedup
            )
            return TermCost(total, rows)
        if isinstance(node, Fix):
            base = visit(node.base)
            step = visit(node.step)
            # The step body re-runs once per semi-naive round and every
            # produced row is set-differenced against the state.
            total = (
                base.total
                + _FIXPOINT_ROUNDS * step.total
                + profile.startup
                + rows * profile.fixpoint_row
            )
            return TermCost(total, rows)
        raise TypeError(f"unknown RA term {node!r}")

    return visit(term)
