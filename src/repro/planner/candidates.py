"""Plan-candidate enumeration and cost-based selection.

The unit the planner ranks is a :class:`PlanCandidate`: one semantically
equivalent way of answering a query. Candidates come from three sources,
all guaranteed equivalent to the original query:

* the **original** query, untouched (the rewriter's revert path, now a
  first-class candidate instead of a boolean),
* the **schema rewrites** — the full rewrite plus the per-relation
  partial rewrites :func:`repro.core.rewriter.enumerate_rewrites` emits
  (soundness of each follows from soundness of the relation rewriting
  itself, paper §3),
* alternative **join orders** of each rewrite's µ-RA translation, from
  the optimizer's bounded enumeration (pure RA equivalences).

``enumerate_plan_candidates`` produces them; ``rank_candidates`` costs
each against one backend's :class:`~repro.planner.cost.CostProfile` and
returns a :class:`PlanChoice` with the winner marked. Sessions execute
the winner; ``explain`` renders the ranked table.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.rewriter import (
    RewriteOptions,
    RewriteResult,
    enumerate_rewrites,
    prune_schema_for_query,
)
from repro.errors import ReproError
from repro.planner.cost import (
    CostProfile,
    cost_profile,
    cost_term,
    estimate_term_bytes,
)
from repro.query.model import UCQT, drop_unsatisfiable_disjuncts
from repro.ra.optimizer import optimize_term_candidates
from repro.ra.stats import Estimator
from repro.ra.translate import TranslationContext, ucqt_to_ra
from repro.schema.model import GraphSchema
from repro.storage.relational import RelationalStore
from repro.ra.terms import RaTerm

#: Bounded enumeration knobs: partial-rewrite sites and join orders per
#: rewrite. Small on purpose — the planner must stay cheap relative to
#: execution, and the candidates are ranked, not exhaustively searched.
DEFAULT_MAX_PARTIAL = 4
DEFAULT_JOIN_ORDERS = 3


@dataclass(frozen=True)
class PlanCandidate:
    """One executable way of answering the query."""

    label: str                 # "original", "rewritten", "partial[0.1]#2", ...
    source: str                # "original" | "rewritten" | "partial"
    query: UCQT                # normalised query (unsatisfiable disjuncts dropped)
    term: RaTerm | None        # optimised µ-RA term; None = provably empty
    rewrite_result: RewriteResult | None


@dataclass(frozen=True)
class RankedCandidate:
    """A candidate with its estimated cost under one backend profile."""

    candidate: PlanCandidate
    cost: float
    rows: float
    chosen: bool = False

    @property
    def label(self) -> str:
        return self.candidate.label

    def to_dict(self) -> dict:
        return {
            "label": self.label,
            "source": self.candidate.source,
            "cost": self.cost,
            "rows": self.rows,
            "chosen": self.chosen,
        }


@dataclass(frozen=True)
class PlanChoice:
    """The ranked candidate table for one (query, backend) planning run.

    ``peak_bytes`` is the planner's soft estimate of the winner's peak
    materialised memory (:func:`~repro.planner.cost.estimate_term_bytes`);
    ``spill``/``shard_workers`` record the session's out-of-core decision
    for this plan (spill when the estimate exceeds the configured
    threshold or the hard ``ResourceBudget.max_bytes`` ceiling; shard
    when multi-process morsels are enabled). Both default to inactive so
    plans from sessions without the memory dimension render unchanged.
    """

    backend: str
    ranked: tuple[RankedCandidate, ...]
    peak_bytes: float = 0.0
    spill: bool = False
    shard_workers: int = 1

    @property
    def winner(self) -> RankedCandidate:
        for entry in self.ranked:
            if entry.chosen:
                return entry
        return self.ranked[0]

    def with_memory(
        self, *, spill: bool, shard_workers: int
    ) -> "PlanChoice":
        """This choice with the session's out-of-core decision stamped."""
        return replace(self, spill=spill, shard_workers=shard_workers)

    @property
    def memory_active(self) -> bool:
        return self.spill or self.shard_workers > 1

    def to_dict(self) -> dict:
        """JSON-serializable candidate table (the ExplainReport form)."""
        payload = {
            "backend": self.backend,
            "candidates": [entry.to_dict() for entry in self.ranked],
        }
        if self.memory_active:
            payload["memory"] = {
                "peak_bytes": self.peak_bytes,
                "spill": self.spill,
                "shard_workers": self.shard_workers,
            }
        return payload

    def render(self) -> str:
        """The EXPLAIN candidate table (``* `` marks the winner)."""
        lines = [
            f"-- planner candidates (cost model: {self.backend}) --",
            f"   {'rank':<5} {'candidate':<22} {'est. cost':>14} {'est. rows':>12}",
        ]
        for rank, entry in enumerate(self.ranked, start=1):
            marker = " * " if entry.chosen else "   "
            lines.append(
                f"{marker}{rank:<5} {entry.label:<22} "
                f"{entry.cost:>14,.1f} {int(entry.rows):>12,}"
            )
        if self.memory_active:
            decisions = []
            if self.spill:
                decisions.append("spill=on")
            if self.shard_workers > 1:
                decisions.append(f"shard_workers={self.shard_workers}")
            lines.append(
                f"-- memory: est. peak {int(self.peak_bytes):,} bytes, "
                + ", ".join(decisions)
            )
        return "\n".join(lines)


def enumerate_plan_candidates(
    query: UCQT,
    schema: GraphSchema,
    store: RelationalStore,
    *,
    rewrite: bool = True,
    options: RewriteOptions | None = None,
    estimator: Estimator | None = None,
    max_partial: int = DEFAULT_MAX_PARTIAL,
    join_orders: int = DEFAULT_JOIN_ORDERS,
) -> list[PlanCandidate]:
    """All candidates for ``query``: rewrites × bounded join orders.

    Candidates whose µ-RA translation fails are dropped (the original
    query is translated first, so at least one candidate survives for
    any query the ``ra`` backend could run; a query *no* candidate can
    translate re-raises the original's error).
    """
    estimator = estimator or Estimator(store)
    sources: list[tuple[str, str, UCQT, RewriteResult | None]] = [
        ("original", "original", query, None)
    ]
    if rewrite:
        # Rewrite enumeration only ever consults the schema through the
        # query's own labels — prune it first so candidate generation
        # stays flat however wide the full schema grows.
        for label, result in enumerate_rewrites(
            query, prune_schema_for_query(schema, query), options,
            max_partial=max_partial,
        ):
            source = "rewritten" if label == "rewritten" else "partial"
            sources.append((label, source, result.query, result))

    candidates: list[PlanCandidate] = []
    seen_terms: set[RaTerm] = set()
    first_error: ReproError | None = None
    for label, source, variant, rewrite_result in sources:
        executed = drop_unsatisfiable_disjuncts(variant)
        if executed.is_empty:
            candidates.append(
                PlanCandidate(label, source, executed, None, rewrite_result)
            )
            continue
        try:
            term = ucqt_to_ra(executed, TranslationContext())
            orders = optimize_term_candidates(
                term, store, limit=join_orders, estimator=estimator
            )
        except ReproError as error:
            first_error = first_error or error
            continue
        for index, ordered in enumerate(orders):
            if ordered in seen_terms:
                continue
            seen_terms.add(ordered)
            suffix = "" if index == 0 else f"#{index + 1}"
            candidates.append(
                PlanCandidate(
                    f"{label}{suffix}", source, executed, ordered, rewrite_result
                )
            )
    if not candidates:
        assert first_error is not None
        raise first_error
    return candidates


def rank_candidates(
    candidates: list[PlanCandidate],
    store: RelationalStore,
    backend: str,
    estimator: Estimator | None = None,
    profile: CostProfile | None = None,
) -> PlanChoice:
    """Cost every candidate under ``backend``'s profile; mark the winner.

    Ties (and the provably-empty plan, which costs nothing) resolve to
    the earliest-enumerated candidate, so selection is deterministic and
    prefers simpler provenance (original before rewritten before
    partial) at equal cost.
    """
    profile = profile or cost_profile(backend)
    estimator = estimator or Estimator(store)
    costed: list[tuple[float, float, int, PlanCandidate]] = []
    for index, candidate in enumerate(candidates):
        if candidate.term is None:
            costed.append((0.0, 0.0, index, candidate))
        else:
            cost = cost_term(candidate.term, store, profile, estimator)
            costed.append((cost.total, cost.rows, index, candidate))
    best_index = min(costed, key=lambda entry: (entry[0], entry[2]))[2]
    ranked = tuple(
        RankedCandidate(
            candidate=candidate,
            cost=total,
            rows=rows,
            chosen=index == best_index,
        )
        for total, rows, index, candidate in sorted(
            costed, key=lambda entry: (entry[0], entry[2])
        )
    )
    winner_term = candidates[best_index].term
    peak_bytes = (
        estimate_term_bytes(winner_term, store, estimator)
        if winner_term is not None
        else 0.0
    )
    return PlanChoice(backend=backend, ranked=ranked, peak_bytes=peak_bytes)


def plan_query(
    query: UCQT,
    schema: GraphSchema,
    store: RelationalStore,
    backend: str,
    *,
    rewrite: bool = True,
    options: RewriteOptions | None = None,
    fixpoint_growth: float | None = None,
    profile: CostProfile | None = None,
    max_partial: int = DEFAULT_MAX_PARTIAL,
    join_orders: int = DEFAULT_JOIN_ORDERS,
) -> PlanChoice:
    """Enumerate, cost and rank every candidate plan for one query.

    ``profile`` overrides the backend's built-in cost profile — the hook
    a session's calibrated profile (fitted from measured operator
    timings) enters the planner through.
    """
    estimator = Estimator(store, fixpoint_growth=fixpoint_growth)
    candidates = enumerate_plan_candidates(
        query,
        schema,
        store,
        rewrite=rewrite,
        options=options,
        estimator=estimator,
        max_partial=max_partial,
        join_orders=join_orders,
    )
    return rank_candidates(
        candidates, store, backend, estimator=estimator, profile=profile
    )
